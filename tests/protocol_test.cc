// Wire protocol: every RPC payload round-trips bit-exactly; frames
// survive arbitrary split points as kNeedMore; corruption — flipped
// bytes, bad magic, bad version, oversized length — is a typed
// ParseError, never a wrong decode. Runs under the Sanitize CI leg.
#include "server/protocol.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace quickview::server {
namespace {

Frame MakeFrame(Opcode opcode, uint64_t request_id, std::string payload,
                uint8_t flags = 0) {
  Frame frame;
  frame.opcode = opcode;
  frame.flags = flags;
  frame.request_id = request_id;
  frame.payload = std::move(payload);
  return frame;
}

std::string Encoded(const Frame& frame) {
  std::string wire;
  EncodeFrame(frame, &wire);
  return wire;
}

TEST(ProtocolFrameTest, RoundTrip) {
  const Frame frame = MakeFrame(Opcode::kSearch, 42, "payload bytes");
  const std::string wire = Encoded(frame);
  EXPECT_EQ(wire.size(),
            kFrameHeaderSize + frame.payload.size() + kFrameTrailerSize);
  Frame decoded;
  size_t consumed = 0;
  auto result = DecodeFrame(wire, &decoded, &consumed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(*result, FrameDecode::kFrame);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(decoded.opcode, Opcode::kSearch);
  EXPECT_EQ(decoded.flags, 0);
  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_EQ(decoded.payload, "payload bytes");
}

TEST(ProtocolFrameTest, EmptyPayloadAndErrorFlag) {
  const Frame frame =
      MakeFrame(Opcode::kStats, 7, std::string(), kFlagError);
  const std::string wire = Encoded(frame);
  Frame decoded;
  size_t consumed = 0;
  auto result = DecodeFrame(wire, &decoded, &consumed);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(*result, FrameDecode::kFrame);
  EXPECT_EQ(decoded.flags, kFlagError);
  EXPECT_TRUE(decoded.payload.empty());
}

TEST(ProtocolFrameTest, EveryTruncationPointNeedsMore) {
  // A valid frame truncated at EVERY byte boundary must report
  // kNeedMore — partial input is normal on a stream, never an error.
  const std::string wire =
      Encoded(MakeFrame(Opcode::kFetchNext, 9, "abcdef"));
  for (size_t len = 0; len < wire.size(); ++len) {
    Frame decoded;
    size_t consumed = 0;
    auto result =
        DecodeFrame(std::string_view(wire).substr(0, len), &decoded,
                    &consumed);
    ASSERT_TRUE(result.ok()) << "len " << len << ": "
                             << result.status().ToString();
    EXPECT_EQ(*result, FrameDecode::kNeedMore) << "len " << len;
  }
}

TEST(ProtocolFrameTest, BackToBackFramesDecodeInOrder) {
  std::string wire = Encoded(MakeFrame(Opcode::kSearch, 1, "first"));
  const size_t first_size = wire.size();
  wire += Encoded(MakeFrame(Opcode::kStats, 2, std::string()));
  Frame decoded;
  size_t consumed = 0;
  auto result = DecodeFrame(wire, &decoded, &consumed);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(*result, FrameDecode::kFrame);
  EXPECT_EQ(consumed, first_size);
  EXPECT_EQ(decoded.payload, "first");
  result = DecodeFrame(std::string_view(wire).substr(consumed), &decoded,
                       &consumed);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(*result, FrameDecode::kFrame);
  EXPECT_EQ(decoded.request_id, 2u);
}

TEST(ProtocolFrameTest, EveryCorruptedByteIsRejected) {
  // Flipping ANY byte of the frame must fail decoding — either a header
  // validation error or the checksum — and never mis-decode. (Bytes in
  // the payload-length field can also legitimately report kNeedMore:
  // a larger length makes the buffer an incomplete frame.)
  const std::string wire = Encoded(MakeFrame(Opcode::kInsert, 3, "xyz"));
  for (size_t i = 0; i < wire.size(); ++i) {
    std::string corrupt = wire;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    Frame decoded;
    size_t consumed = 0;
    auto result = DecodeFrame(corrupt, &decoded, &consumed);
    if (result.ok()) {
      EXPECT_EQ(*result, FrameDecode::kNeedMore) << "byte " << i;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError)
          << "byte " << i;
    }
  }
}

TEST(ProtocolFrameTest, BadMagicVersionOpcodeFlags) {
  const std::string wire = Encoded(MakeFrame(Opcode::kSearch, 1, "p"));
  {
    std::string bad = wire;
    bad[0] = 'X';
    Frame decoded;
    size_t consumed = 0;
    auto result = DecodeFrame(bad, &decoded, &consumed);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("magic"), std::string::npos);
  }
  {
    std::string bad = wire;
    bad[5] = 99;  // version low byte
    Frame decoded;
    size_t consumed = 0;
    auto result = DecodeFrame(bad, &decoded, &consumed);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("version"), std::string::npos);
  }
  {
    std::string bad = wire;
    bad[6] = 0;  // opcode below kMinOpcode
    Frame decoded;
    size_t consumed = 0;
    auto result = DecodeFrame(bad, &decoded, &consumed);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("opcode"), std::string::npos);
  }
  {
    std::string bad = wire;
    bad[7] = static_cast<char>(0x80);  // reserved flag bit
    Frame decoded;
    size_t consumed = 0;
    auto result = DecodeFrame(bad, &decoded, &consumed);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("flags"), std::string::npos);
  }
}

TEST(ProtocolFrameTest, OversizedPayloadLengthRejectedBeforeRead) {
  // Header claims a payload over the cap: rejected immediately, no
  // matter that the bytes aren't there.
  std::string wire = Encoded(MakeFrame(Opcode::kSearch, 1, std::string()));
  wire[16] = static_cast<char>(0xff);  // payload-length high byte
  Frame decoded;
  size_t consumed = 0;
  auto result = DecodeFrame(wire, &decoded, &consumed);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("over limit"), std::string::npos);
}

TEST(ProtocolStatusTest, AllCodesRoundTripTheWire) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kParseError, StatusCode::kUnsupported,
        StatusCode::kEvalError, StatusCode::kCancelled,
        StatusCode::kDeadlineExceeded, StatusCode::kResourceExhausted,
        StatusCode::kInternal}) {
    auto back = WireStatusCode(StatusCodeToWire(code));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, code);
  }
  EXPECT_FALSE(WireStatusCode(999).ok());
}

TEST(ProtocolStatusTest, StatusPayloadRoundTrip) {
  const Status original =
      Status::ResourceExhausted("admission queue full (limit 4)");
  std::string payload;
  EncodeStatusPayload(original, &payload);
  Status decoded;
  Status parse = DecodeStatusPayload(payload, &decoded);
  ASSERT_TRUE(parse.ok()) << parse.ToString();
  EXPECT_EQ(decoded.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.message(), "admission queue full (limit 4)");
  // Truncated and trailing payloads are ParseError.
  Status scratch;
  EXPECT_EQ(DecodeStatusPayload(payload.substr(0, payload.size() - 1),
                                &scratch)
                .code(),
            StatusCode::kParseError);
  EXPECT_EQ(DecodeStatusPayload(payload + "x", &scratch).code(),
            StatusCode::kParseError);
}

TEST(ProtocolPayloadTest, RegisterViewRoundTrip) {
  RegisterViewRequest req{"default", "for $b in doc(\"books.xml\")"};
  std::string payload;
  Encode(req, &payload);
  auto decoded = DecodeRegisterViewRequest(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name, req.name);
  EXPECT_EQ(decoded->view_text, req.view_text);
  EXPECT_FALSE(DecodeRegisterViewRequest(payload.substr(1)).ok());
  EXPECT_FALSE(DecodeRegisterViewRequest(payload + "x").ok());
}

TEST(ProtocolPayloadTest, SearchRpcRequestRoundTrip) {
  SearchRpcRequest req;
  req.view = "default";
  req.keywords = {"xml", "search", "web"};
  req.top_k = 25;
  req.conjunctive = true;
  req.shard = -1;
  req.deadline_ms = 1500;
  std::string payload;
  Encode(req, &payload);
  auto decoded = DecodeSearchRpcRequest(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->view, req.view);
  EXPECT_EQ(decoded->keywords, req.keywords);
  EXPECT_EQ(decoded->top_k, 25u);
  EXPECT_TRUE(decoded->conjunctive);
  EXPECT_EQ(decoded->shard, -1);
  EXPECT_EQ(decoded->deadline_ms, 1500u);
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodeSearchRpcRequest(payload.substr(0, len)).ok())
        << "len " << len;
  }
  EXPECT_FALSE(DecodeSearchRpcRequest(payload + "x").ok());
}

TEST(ProtocolPayloadTest, SearchResponseRoundTripBitExact) {
  engine::SearchResponse resp;
  engine::SearchHit hit;
  hit.score = 0.1 + 0.2;  // not exactly 0.3 — bit-exactness matters
  hit.tf = {3, 0, 7};
  hit.byte_length = 12345;
  hit.xml = "<result>text</result>";
  resp.hits.push_back(hit);
  hit.score = -1.5e-300;
  hit.tf.clear();
  hit.xml.clear();
  resp.hits.push_back(hit);
  resp.timings.qpt_ms = 0.125;
  resp.timings.pdt_ms = 3.5;
  resp.timings.eval_ms = 1.0 / 3.0;
  resp.timings.post_ms = 0;
  resp.stats.view_results = 40;
  resp.stats.matching_results = 11;
  resp.stats.pdt.index_probes = 99;
  resp.stats.store_fetches = 17;
  std::string payload;
  Encode(resp, &payload);
  auto decoded = DecodeSearchResponse(payload);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->hits.size(), 2u);
  EXPECT_EQ(decoded->hits[0].score, 0.1 + 0.2);  // bit-identical
  EXPECT_EQ(decoded->hits[0].tf, (std::vector<uint64_t>{3, 0, 7}));
  EXPECT_EQ(decoded->hits[0].byte_length, 12345u);
  EXPECT_EQ(decoded->hits[0].xml, "<result>text</result>");
  EXPECT_EQ(decoded->hits[1].score, -1.5e-300);
  EXPECT_EQ(decoded->timings.eval_ms, 1.0 / 3.0);
  EXPECT_EQ(decoded->stats.view_results, 40u);
  EXPECT_EQ(decoded->stats.matching_results, 11u);
  EXPECT_EQ(decoded->stats.pdt.index_probes, 99u);
  EXPECT_EQ(decoded->stats.store_fetches, 17u);
  EXPECT_FALSE(DecodeSearchResponse(payload.substr(0, 10)).ok());
  EXPECT_FALSE(DecodeSearchResponse(payload + "x").ok());
}

TEST(ProtocolPayloadTest, CursorRpcsRoundTrip) {
  {
    OpenCursorResponse resp{77, 40, 30};
    std::string payload;
    Encode(resp, &payload);
    auto decoded = DecodeOpenCursorResponse(payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->cursor_id, 77u);
    EXPECT_EQ(decoded->matching, 40u);
    EXPECT_EQ(decoded->pending, 30u);
    EXPECT_FALSE(DecodeOpenCursorResponse(payload.substr(1)).ok());
  }
  {
    FetchNextRequest req{77, 5};
    std::string payload;
    Encode(req, &payload);
    auto decoded = DecodeFetchNextRequest(payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->cursor_id, 77u);
    EXPECT_EQ(decoded->count, 5u);
    EXPECT_FALSE(DecodeFetchNextRequest(payload + "x").ok());
  }
  {
    FetchNextResponse resp;
    engine::SearchHit hit;
    hit.score = 2.25;
    hit.xml = "<r/>";
    resp.hits.push_back(hit);
    resp.done = true;
    std::string payload;
    Encode(resp, &payload);
    auto decoded = DecodeFetchNextResponse(payload);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->hits.size(), 1u);
    EXPECT_EQ(decoded->hits[0].score, 2.25);
    EXPECT_TRUE(decoded->done);
    EXPECT_FALSE(DecodeFetchNextResponse(payload.substr(0, 4)).ok());
  }
  {
    CloseCursorRequest req{77};
    std::string payload;
    Encode(req, &payload);
    auto decoded = DecodeCloseCursorRequest(payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->cursor_id, 77u);
    EXPECT_FALSE(DecodeCloseCursorRequest(payload.substr(1)).ok());
  }
}

TEST(ProtocolPayloadTest, MutationRpcsRoundTrip) {
  {
    InsertRequest req{"books.xml", "<books><book/></books>"};
    std::string payload;
    Encode(req, &payload);
    auto decoded = DecodeInsertRequest(payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->name, req.name);
    EXPECT_EQ(decoded->xml_text, req.xml_text);
    EXPECT_FALSE(DecodeInsertRequest(payload.substr(0, 6)).ok());
  }
  {
    RemoveRequest req{"books.xml"};
    std::string payload;
    Encode(req, &payload);
    auto decoded = DecodeRemoveRequest(payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->name, req.name);
    EXPECT_FALSE(DecodeRemoveRequest(payload + "x").ok());
  }
}

TEST(ProtocolPayloadTest, StatsResponseRoundTrip) {
  StatsResponse resp;
  resp.admitted = 100;
  resp.shed = 3;
  resp.deadline_rejected = 2;
  resp.inflight = 1;
  resp.open_cursors = 4;
  resp.connections_accepted = 9;
  resp.frames_received = 200;
  resp.protocol_errors = 1;
  resp.latency[static_cast<size_t>(Opcode::kSearch)] =
      OpcodeLatency{50, 100, 900, 5000};
  resp.queries = 64;
  resp.cache_hits = 56;
  resp.cache_misses = 8;
  resp.search.matching_results = 12;
  resp.buffer.hits = 30;
  resp.buffer.frame_capacity = 256;
  std::string payload;
  Encode(resp, &payload);
  auto decoded = DecodeStatsResponse(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->admitted, 100u);
  EXPECT_EQ(decoded->shed, 3u);
  EXPECT_EQ(decoded->deadline_rejected, 2u);
  EXPECT_EQ(decoded->open_cursors, 4u);
  const OpcodeLatency& search =
      decoded->latency[static_cast<size_t>(Opcode::kSearch)];
  EXPECT_EQ(search.count, 50u);
  EXPECT_EQ(search.p99_us, 5000u);
  EXPECT_EQ(decoded->latency[static_cast<size_t>(Opcode::kInsert)].count, 0u);
  EXPECT_EQ(decoded->queries, 64u);
  EXPECT_EQ(decoded->cache_hits, 56u);
  EXPECT_EQ(decoded->search.matching_results, 12u);
  EXPECT_EQ(decoded->buffer.frame_capacity, 256u);
  EXPECT_FALSE(DecodeStatsResponse(payload.substr(0, 99)).ok());
  EXPECT_FALSE(DecodeStatsResponse(payload + "x").ok());
}

TEST(ProtocolFrameTest, TraceFlagRoundTrips) {
  Frame frame = MakeFrame(Opcode::kSearch, 7, "inner");
  frame.flags = kFlagTrace;
  const std::string wire = Encoded(frame);
  Frame decoded;
  size_t consumed = 0;
  auto result = DecodeFrame(wire, &decoded, &consumed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(*result, FrameDecode::kFrame);
  EXPECT_EQ(decoded.flags, kFlagTrace);
  EXPECT_EQ(decoded.payload, "inner");
}

TEST(ProtocolPayloadTest, TracedPayloadRoundTrip) {
  const std::string trace = "trace 7\nrequest start=0us dur=5us\n";
  const std::string inner("binary\0payload", 14);
  std::string wrapped;
  EncodeTracedPayload(trace, inner, &wrapped);
  auto split = SplitTracedPayload(wrapped);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_EQ(split->trace, trace);
  EXPECT_EQ(split->inner, inner);
  // An empty trace and empty inner are both legal.
  wrapped.clear();
  EncodeTracedPayload("", "", &wrapped);
  split = SplitTracedPayload(wrapped);
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(split->trace.empty());
  EXPECT_TRUE(split->inner.empty());
  // A length prefix pointing past the payload is a ParseError.
  std::string bogus;
  EncodeTracedPayload(trace, inner, &bogus);
  bogus.resize(4 + trace.size() - 1);
  EXPECT_EQ(SplitTracedPayload(bogus).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(SplitTracedPayload("abc").status().code(),
            StatusCode::kParseError);
}

TEST(ProtocolPayloadTest, StatsRpcRequestFormats) {
  // The historical encoding — an empty payload — still means binary.
  auto decoded = DecodeStatsRpcRequest(std::string_view());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->format, StatsRpcRequest::kBinary);
  // Binary encodes AS the empty payload, keeping old servers compatible.
  StatsRpcRequest req;
  std::string payload;
  Encode(req, &payload);
  EXPECT_TRUE(payload.empty());
  // Text is one explicit format byte.
  req.format = StatsRpcRequest::kText;
  Encode(req, &payload);
  ASSERT_EQ(payload.size(), 1u);
  decoded = DecodeStatsRpcRequest(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->format, StatsRpcRequest::kText);
  // Unknown formats and trailing bytes are ParseError.
  EXPECT_FALSE(DecodeStatsRpcRequest(std::string(1, '\x02')).ok());
  EXPECT_FALSE(DecodeStatsRpcRequest("ab").ok());
}

TEST(ProtocolPayloadTest, StatsResponseCarriesAdmissionAndSlowQueries) {
  StatsResponse resp;
  OpcodeLatency& search = resp.latency[static_cast<size_t>(Opcode::kSearch)];
  search.count = 10;
  search.shed = 4;
  search.deadline_rejected = 2;
  SlowQueryEntry slow;
  slow.latency_us = 125000;
  slow.request_id = 42;
  slow.opcode = static_cast<uint8_t>(Opcode::kSearch);
  slow.description = "search view=default keywords=xml,search";
  slow.trace = "trace 42\nrequest start=0us dur=125000us\n";
  resp.slow_queries.push_back(slow);
  resp.slow_queries.push_back(SlowQueryEntry{100, 7, 3, "open_cursor", ""});
  std::string payload;
  Encode(resp, &payload);
  auto decoded = DecodeStatsResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const OpcodeLatency& got =
      decoded->latency[static_cast<size_t>(Opcode::kSearch)];
  EXPECT_EQ(got.shed, 4u);
  EXPECT_EQ(got.deadline_rejected, 2u);
  ASSERT_EQ(decoded->slow_queries.size(), 2u);
  EXPECT_EQ(decoded->slow_queries[0].latency_us, 125000u);
  EXPECT_EQ(decoded->slow_queries[0].request_id, 42u);
  EXPECT_EQ(decoded->slow_queries[0].description, slow.description);
  EXPECT_EQ(decoded->slow_queries[0].trace, slow.trace);
  EXPECT_EQ(decoded->slow_queries[1].opcode, 3u);
  EXPECT_TRUE(decoded->slow_queries[1].trace.empty());
  EXPECT_FALSE(DecodeStatsResponse(payload.substr(0, payload.size() - 3)).ok());
  EXPECT_FALSE(DecodeStatsResponse(payload + "x").ok());
}

}  // namespace
}  // namespace quickview::server
