#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "xml/parser.h"

namespace quickview::index {
namespace {

using xml::DeweyId;

TEST(InvertedIndexTest, AddLookupOrdered) {
  InvertedIndex index;
  index.Add("xml", DeweyId::Parse("1.2.3"), 2);
  index.Add("xml", DeweyId::Parse("1.1.4"), 1);
  index.Add("search", DeweyId::Parse("2.1.3"), 5);
  auto postings = index.Lookup("xml");
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0].id.ToString(), "1.1.4");
  EXPECT_EQ(postings[0].tf, 1u);
  EXPECT_EQ(postings[1].id.ToString(), "1.2.3");
  EXPECT_EQ(postings[1].tf, 2u);
  EXPECT_TRUE(index.Lookup("absent").empty());
}

TEST(InvertedIndexTest, AddAccumulates) {
  InvertedIndex index;
  index.Add("xml", DeweyId::Parse("1.1"), 1);
  index.Add("xml", DeweyId::Parse("1.1"), 3);
  index.Add("xml", DeweyId::Parse("1.1"), 0);  // no-op
  uint32_t tf = 0;
  EXPECT_TRUE(index.Contains("xml", DeweyId::Parse("1.1"), &tf));
  EXPECT_EQ(tf, 4u);
}

TEST(InvertedIndexTest, ContainsPointProbe) {
  InvertedIndex index;
  index.Add("xml", DeweyId::Parse("1.2"), 1);
  EXPECT_TRUE(index.Contains("xml", DeweyId::Parse("1.2")));
  EXPECT_FALSE(index.Contains("xml", DeweyId::Parse("1.3")));
  EXPECT_FALSE(index.Contains("search", DeweyId::Parse("1.2")));
}

TEST(InvertedIndexTest, ListLength) {
  InvertedIndex index;
  for (int i = 1; i <= 9; ++i) {
    index.Add("t", DeweyId::Parse("1." + std::to_string(i)), 1);
  }
  EXPECT_EQ(index.ListLength("t"), 9u);
  EXPECT_EQ(index.ListLength("u"), 0u);
}

TEST(InvertedIndexTest, NoCrossTermBleedWithPrefixTerms) {
  // "xml" and "xmls" share a prefix; the separator must keep lists apart.
  InvertedIndex index;
  index.Add("xml", DeweyId::Parse("1.1"), 1);
  index.Add("xmls", DeweyId::Parse("1.2"), 1);
  EXPECT_EQ(index.Lookup("xml").size(), 1u);
  EXPECT_EQ(index.Lookup("xmls").size(), 1u);
}

TEST(IndexBuilderTest, DirectContainmentOnly) {
  auto parsed = xml::ParseXml(
      "<book><title>xml search</title><review>"
      "<content>about xml</content></review></book>");
  ASSERT_TRUE(parsed.ok());
  auto indexes = BuildDocumentIndexes(**parsed);
  // "xml" is directly contained by title (1.1) and content (1.2.1) only —
  // not by their ancestors.
  auto postings = indexes->inverted_index.Lookup("xml");
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0].id.ToString(), "1.1");
  EXPECT_EQ(postings[1].id.ToString(), "1.2.1");
  // Tag names are terms of the element itself.
  EXPECT_TRUE(
      indexes->inverted_index.Contains("book", DeweyId::Parse("1")));
  EXPECT_TRUE(
      indexes->inverted_index.Contains("title", DeweyId::Parse("1.1")));
}

TEST(IndexBuilderTest, DatabaseIndexesPerDocument) {
  xml::Database db;
  auto a = xml::ParseXml("<a><x>foo</x></a>", 1);
  auto b = xml::ParseXml("<b><y>bar</y></b>", 2);
  ASSERT_TRUE(a.ok() && b.ok());
  db.AddDocument("a.xml", *a);
  db.AddDocument("b.xml", *b);
  auto indexes = BuildDatabaseIndexes(db);
  ASSERT_NE(indexes->Get("a.xml"), nullptr);
  ASSERT_NE(indexes->Get("b.xml"), nullptr);
  EXPECT_EQ(indexes->Get("c.xml"), nullptr);
  EXPECT_EQ(indexes->Get("a.xml")->inverted_index.ListLength("foo"), 1u);
  EXPECT_EQ(indexes->Get("a.xml")->inverted_index.ListLength("bar"), 0u);
}

}  // namespace
}  // namespace quickview::index
