// src/obs: the metrics registry must render valid Prometheus text
// format (validated by a real line-grammar parser here), the trace tree
// must serialize deterministically modulo timing fields, and the
// slow-query log must keep exactly the K worst entries. Runs under the
// Sanitize and TSan CI legs (StartSpan races are the supported case).
#include <cstdint>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"

namespace quickview::obs {
namespace {

// ---------------------------------------------------------------------------
// Prometheus text-format validator: line grammar, TYPE-before-samples,
// one TYPE block per metric, histogram bucket monotonicity and
// _count/+Inf agreement. Intentionally strict — a regression in the
// renderer should fail here, not in a scrape pipeline.

struct ExpositionCheck {
  std::set<std::string> typed_metrics;
  std::map<std::string, std::vector<uint64_t>> bucket_series;  // cumulative
  std::map<std::string, uint64_t> inf_count;
  std::map<std::string, uint64_t> count_value;
};

void ValidateExposition(const std::string& text, ExpositionCheck* check) {
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n') << "exposition must end with a newline";
  const std::regex type_line(R"(# TYPE ([a-z_][a-z0-9_]*) (counter|gauge|histogram))");
  const std::regex sample_line(
      R"(([a-z_][a-z0-9_]*)(\{[a-z_][a-z0-9_]*="(?:[^"\\\n]|\\["\\n])*"(,[a-z_][a-z0-9_]*="(?:[^"\\\n]|\\["\\n])*")*\})? (\+Inf|-?[0-9]+))");
  std::string declared_prefixless;  // metric name of the open TYPE block
  std::set<std::string> closed_blocks;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    std::smatch m;
    if (line.rfind("# TYPE ", 0) == 0) {
      ASSERT_TRUE(std::regex_match(line, m, type_line)) << line;
      const std::string name = m[1];
      ASSERT_TRUE(check->typed_metrics.insert(name).second)
          << "metric " << name << " declared twice";
      ASSERT_EQ(closed_blocks.count(name), 0u)
          << "samples of " << name << " split across TYPE blocks";
      if (!declared_prefixless.empty()) {
        closed_blocks.insert(declared_prefixless);
      }
      declared_prefixless = name;
      continue;
    }
    ASSERT_TRUE(std::regex_match(line, m, sample_line)) << line;
    const std::string sample_name = m[1];
    // Histogram samples append _bucket/_sum/_count to the declared name.
    const bool belongs =
        sample_name == declared_prefixless ||
        sample_name == declared_prefixless + "_bucket" ||
        sample_name == declared_prefixless + "_sum" ||
        sample_name == declared_prefixless + "_count";
    ASSERT_TRUE(belongs) << "sample " << sample_name
                         << " outside its TYPE block (" << declared_prefixless
                         << ")";
    const std::string labels = m[2];
    const std::string value = m[4];
    if (sample_name == declared_prefixless + "_bucket") {
      // Strip the le label to key the series; collect cumulative counts.
      const std::string series =
          sample_name + std::regex_replace(labels, std::regex(R"(,?le="[^"]*")"),
                                           "");
      const uint64_t v = std::stoull(value);
      if (labels.find("le=\"+Inf\"") != std::string::npos) {
        check->inf_count[series] = v;
      } else {
        check->bucket_series[series].push_back(v);
      }
    } else if (sample_name == declared_prefixless + "_count") {
      check->count_value[sample_name + labels] = std::stoull(value);
    }
  }
  for (const auto& [series, cumulative] : check->bucket_series) {
    uint64_t prev = 0;
    for (uint64_t v : cumulative) {
      ASSERT_GE(v, prev) << "non-monotone buckets in " << series;
      prev = v;
    }
    ASSERT_TRUE(check->inf_count.count(series)) << "no +Inf in " << series;
    ASSERT_GE(check->inf_count[series], prev) << series;
  }
}

TEST(MetricsRegistryTest, CounterGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  g.Set(7);
  g.Add(5);
  g.Sub(2);
  EXPECT_EQ(g.value(), 10);
}

TEST(MetricsRegistryTest, RejectsBadNamesAndDuplicates) {
  MetricsRegistry registry;
  Counter c;
  EXPECT_FALSE(registry.RegisterCounter("Bad-Name", {}, &c).ok());
  EXPECT_FALSE(registry.RegisterCounter("9starts_with_digit", {}, &c).ok());
  EXPECT_FALSE(registry.RegisterCounter("", {}, &c).ok());
  EXPECT_FALSE(registry.RegisterCounter("qv_x_total", {}, nullptr).ok());
  EXPECT_FALSE(
      registry.RegisterCounter("qv_x_total", {{"le", "5"}}, &c).ok());

  ASSERT_TRUE(registry.RegisterCounter("qv_x_total", {{"shard", "0"}}, &c).ok());
  // Same name, different labels: fine. Same labels: duplicate.
  ASSERT_TRUE(registry.RegisterCounter("qv_x_total", {{"shard", "1"}}, &c).ok());
  EXPECT_FALSE(
      registry.RegisterCounter("qv_x_total", {{"shard", "1"}}, &c).ok());
  // Same name, different type: conflict.
  Gauge g;
  EXPECT_FALSE(registry.RegisterGauge("qv_x_total", {{"shard", "2"}}, &g).ok());
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistryTest, TextExpositionIsValidPrometheus) {
  MetricsRegistry registry;
  Counter hits;
  hits.Increment(3);
  Counter misses;
  misses.Increment(1);
  Gauge depth;
  depth.Set(-2);
  Histogram latency;
  for (uint64_t v : {3u, 9u, 120u, 120u, 4000u}) latency.Record(v);

  ASSERT_TRUE(
      registry.RegisterCounter("qv_cache_hits_total", {{"shard", "0"}}, &hits)
          .ok());
  ASSERT_TRUE(
      registry.RegisterCounter("qv_cache_hits_total", {{"shard", "1"}}, &misses)
          .ok());
  ASSERT_TRUE(registry.RegisterGauge("qv_pool_queue_depth", {}, &depth).ok());
  ASSERT_TRUE(
      registry.RegisterHistogram("qv_server_latency_us", {{"opcode", "search"}},
                                 &latency)
          .ok());
  ASSERT_TRUE(registry
                  .RegisterCallback("qv_custom_level", {},
                                    MetricsRegistry::InstrumentKind::kGauge,
                                    [] { return int64_t{17}; })
                  .ok());

  const std::string text = registry.TextExposition();
  ExpositionCheck check;
  ValidateExposition(text, &check);
  EXPECT_EQ(check.typed_metrics.size(), 4u);
  // The histogram's +Inf bucket and _count agree with the recorded total.
  EXPECT_EQ(check.inf_count.at("qv_server_latency_us_bucket{opcode=\"search\"}"),
            5u);
  EXPECT_EQ(check.count_value.at("qv_server_latency_us_count{opcode=\"search\"}"),
            5u);
  // Values render where expected.
  EXPECT_NE(text.find("qv_cache_hits_total{shard=\"0\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("qv_pool_queue_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("qv_custom_level 17\n"), std::string::npos);
  // Deterministic: rendering twice is byte-identical.
  EXPECT_EQ(text, registry.TextExposition());
}

TEST(MetricsRegistryTest, EscapesLabelValues) {
  MetricsRegistry registry;
  Gauge g;
  ASSERT_TRUE(registry
                  .RegisterGauge("qv_view_bytes",
                                 {{"view", "a\"b\\c\nd"}}, &g)
                  .ok());
  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find(R"(qv_view_bytes{view="a\"b\\c\nd"} 0)"),
            std::string::npos);
  ExpositionCheck check;
  ValidateExposition(text, &check);
}

TEST(HistogramSnapshotTest, MatchesLiveHistogram) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, h.count());
  EXPECT_EQ(snap.sum, h.sum());
  uint64_t bucket_total = 0;
  uint64_t prev_upper = 0;
  for (const auto& b : snap.buckets) {
    EXPECT_LE(b.lower, b.upper);
    EXPECT_GT(b.lower, prev_upper) << "buckets must not overlap";
    prev_upper = b.upper;
    bucket_total += b.count;
  }
  EXPECT_EQ(bucket_total, snap.count) << "count is self-consistent";
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(snap.ValueAtQuantile(q), h.ValueAtQuantile(q)) << "q=" << q;
  }
  EXPECT_EQ(HistogramSnapshot{}.ValueAtQuantile(0.5), 0u);
}

TEST(SlowQueryLogTest, KeepsWorstKAboveThreshold) {
  SlowQueryLog log({.threshold_us = 100, .capacity = 3});
  for (uint64_t latency : {50u, 150u, 99u, 500u, 200u, 120u, 300u}) {
    SlowQueryLog::Entry entry;
    entry.latency_us = latency;
    entry.request_id = latency;  // tag to identify survivors
    log.Record(std::move(entry));
  }
  EXPECT_EQ(log.considered(), 7u);
  const std::vector<SlowQueryLog::Entry> kept = log.Snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].latency_us, 500u);
  EXPECT_EQ(kept[1].latency_us, 300u);
  EXPECT_EQ(kept[2].latency_us, 200u);
}

TEST(SlowQueryLogTest, ZeroCapacityDisables) {
  SlowQueryLog log({.threshold_us = 0, .capacity = 0});
  SlowQueryLog::Entry entry;
  entry.latency_us = 1000;
  log.Record(std::move(entry));
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.considered(), 1u);
}

TEST(TraceTest, SpanTreeStructureAndCounters) {
  Trace trace(42);
  EXPECT_EQ(trace.id(), 42u);
  TraceSpan* root = trace.root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent(), nullptr);

  TraceSpan* plan = trace.StartSpan("plan");
  plan->AddCounter("keywords", 2);
  plan->Close();
  TraceSpan* shard = trace.StartSpan("shard", nullptr, 3);
  TraceSpan* build = trace.StartSpan("build_pdts", shard, 3);
  build->AddCounter("nodes_emitted", 10);
  build->AddCounter("nodes_emitted", 5);  // upsert accumulates
  build->Close();
  shard->Close();
  // Post-close annotation is legal (cursor I/O attribution).
  shard->AddCounter("pages_read", 7);

  EXPECT_EQ(plan->parent(), root);
  EXPECT_EQ(build->parent(), shard);
  EXPECT_EQ(build->counter("nodes_emitted"), 15u);
  EXPECT_EQ(build->counter("absent"), 0u);
  EXPECT_EQ(shard->shard(), 3);
  EXPECT_TRUE(build->closed());

  const std::string serialized = trace.Serialize();
  EXPECT_NE(serialized.find("trace 42\n"), std::string::npos);
  EXPECT_NE(serialized.find("shard shard=3"), std::string::npos);
  EXPECT_NE(serialized.find("nodes_emitted=15"), std::string::npos);
  EXPECT_NE(serialized.find("pages_read=7"), std::string::npos);
  // Indentation encodes depth: build_pdts sits two levels down.
  EXPECT_NE(serialized.find("\n    build_pdts"), std::string::npos);
  EXPECT_TRUE(root->closed()) << "Serialize closes the root";
}

// Strips the timing fields; everything else must be byte-stable.
std::string StripTimings(const std::string& serialized) {
  return std::regex_replace(serialized,
                            std::regex(R"( start=[0-9]+us dur=[0-9]+us)"), "");
}

TEST(TraceTest, SerializationByteStableModuloTiming) {
  auto run = [] {
    Trace trace(7, "request");
    SpanScope plan(&trace, "plan");
    plan.AddCounter("keywords", 3);
    for (int s = 0; s < 4; ++s) {
      SpanScope shard(&trace, "shard", nullptr, s);
      SpanScope eval(&trace, "evaluate", shard.span(), s);
      eval.AddCounter("view_results", static_cast<uint64_t>(s) + 1);
    }
    return trace.Serialize();
  };
  EXPECT_EQ(StripTimings(run()), StripTimings(run()));
}

TEST(TraceTest, NullTraceScopesAreNoOps) {
  SpanScope scope(nullptr, "plan");
  EXPECT_EQ(scope.span(), nullptr);
  scope.AddCounter("x", 1);  // must not crash
}

TEST(TraceTest, ConcurrentStartSpanIsSafe) {
  Trace trace(1);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  // Pre-created parents (the engine pre-creates shard spans in shard
  // order on the coordinator for deterministic sibling ordering).
  std::vector<TraceSpan*> parents;
  parents.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    parents.push_back(trace.StartSpan("shard", nullptr, t));
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, parent = parents[t], t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan* span = trace.StartSpan("op", parent, t);
        span->AddCounter("i", static_cast<uint64_t>(i));
        span->Close();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (TraceSpan* parent : parents) parent->Close();
  EXPECT_EQ(trace.spans().size(),
            1u + kThreads + kThreads * kSpansPerThread);
  // Serializes cleanly after the joins (quiescence).
  const std::string serialized = trace.Serialize();
  EXPECT_NE(serialized.find("shard shard=0"), std::string::npos);
}

}  // namespace
}  // namespace quickview::obs
