// Trace-correctness acceptance: a traced 4-shard search yields exactly
// one "shard" span per executed shard with the full per-shard pipeline
// underneath (plan -> build_pdts -> evaluate), a merge span and a
// materialize span; every child's duration fits inside its parent; and
// the counters absorbed into the shard spans sum to exactly the
// cursor's EngineStats — the traced numbers ARE the stats, not a
// parallel bookkeeping that can drift. Serialization is byte-stable
// across runs modulo the timing fields.
#include <map>
#include <memory>
#include <regex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "engine/result_cursor.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "obs/trace.h"
#include "storage/document_store.h"
#include "storage/shard_set.h"
#include "workload/bookrev_generator.h"

namespace quickview::engine {
namespace {

std::vector<ShardContext> ContextsOf(const storage::ShardSet& shards) {
  std::vector<ShardContext> contexts;
  for (size_t i = 0; i < shards.size(); ++i) {
    const storage::Shard& shard = shards.shard(i);
    contexts.push_back(ShardContext{shard.database.get(),
                                    shard.index_source(),
                                    shard.store.get()});
  }
  return contexts;
}

struct TracedRun {
  std::shared_ptr<obs::Trace> trace;
  EngineStats stats;
  std::string serialized;
};

/// One traced search over a fresh 4-shard bookrev corpus, drained
/// completely; returns the quiescent trace plus the cursor's stats.
TracedRun RunTracedSearch(uint64_t trace_id) {
  workload::BookRevOptions opts;
  opts.num_books = 60;
  auto db = workload::GenerateBookRevDatabase(opts);
  storage::ShardingSpec spec;
  spec.shards = 4;
  spec.colocate_tag = "isbn";
  auto set = storage::ShardSet::Partition(*db, spec);
  EXPECT_TRUE(set.ok()) << set.status();
  ThreadPool pool(4);
  ViewSearchEngine engine(ContextsOf(*set), &pool);

  SearchRequest request;
  request.view = workload::BookRevView();
  request.keywords = {"xml", "search"};
  request.options.conjunctive = false;
  request.options.top_k = 10;
  request.trace = std::make_shared<obs::Trace>(trace_id);

  TracedRun run;
  run.trace = request.trace;
  auto cursor = engine.Open(request);
  EXPECT_TRUE(cursor.ok()) << cursor.status();
  auto hits = (*cursor)->FetchNext((*cursor)->pending());
  EXPECT_TRUE(hits.ok()) << hits.status();
  EXPECT_FALSE(hits->empty());
  run.stats = (*cursor)->stats();
  // The cursor co-owns the trace; drop it before serializing so the
  // trace is provably quiescent.
  (*cursor).reset();
  run.serialized = run.trace->Serialize();
  return run;
}

/// Strips the two timing fields — the only run-dependent bytes.
std::string StripTimings(const std::string& serialized) {
  static const std::regex kTiming(" start=[0-9]+us dur=[0-9]+us");
  return std::regex_replace(serialized, kTiming, "");
}

TEST(TraceTest, FourShardSearchYieldsOneSpanPerShardTask) {
  TracedRun run = RunTracedSearch(/*trace_id=*/42);
  std::vector<const obs::TraceSpan*> spans = run.trace->spans();
  ASSERT_FALSE(spans.empty());
  const obs::TraceSpan* root = spans[0];
  EXPECT_EQ(root->name(), "request");
  EXPECT_EQ(root->parent(), nullptr);

  // Exactly one shard span per shard id 0..3, each parented to the root,
  // each with the full pipeline underneath.
  std::map<int, const obs::TraceSpan*> shard_spans;
  std::map<int, std::vector<std::string>> children;
  int merge_spans = 0;
  int materialize_spans = 0;
  for (const obs::TraceSpan* span : spans) {
    if (span->name() == "shard") {
      EXPECT_EQ(span->parent(), root);
      EXPECT_TRUE(shard_spans.emplace(span->shard(), span).second)
          << "duplicate shard span for shard " << span->shard();
    } else if (span->parent() != nullptr &&
               span->parent()->name() == "shard") {
      EXPECT_EQ(span->shard(), span->parent()->shard())
          << "child span must carry its shard task's id";
      children[span->shard()].push_back(span->name());
    } else if (span->name() == "merge") {
      ++merge_spans;
      EXPECT_EQ(span->parent(), root);
    } else if (span->name() == "materialize") {
      ++materialize_spans;
      EXPECT_EQ(span->parent(), root);
    }
  }
  ASSERT_EQ(shard_spans.size(), 4u);
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(shard_spans.count(s)) << "missing span for shard " << s;
    ASSERT_EQ(children[s].size(), 3u) << "shard " << s;
    EXPECT_EQ(children[s][0], "plan");
    EXPECT_EQ(children[s][1], "build_pdts");
    EXPECT_EQ(children[s][2], "evaluate");
  }
  EXPECT_EQ(merge_spans, 1);
  EXPECT_EQ(materialize_spans, 1);

  // Every span is closed, and every child fits inside its parent.
  for (const obs::TraceSpan* span : spans) {
    EXPECT_TRUE(span->closed()) << span->name();
    if (span->parent() == nullptr) continue;
    const obs::TraceSpan* parent = span->parent();
    EXPECT_GE(span->start_ns(), parent->start_ns()) << span->name();
    EXPECT_LE(span->start_ns() + span->duration_ns(),
              parent->start_ns() + parent->duration_ns())
        << span->name() << " must end within " << parent->name();
  }
}

TEST(TraceTest, ShardSpanCountersSumToEngineStats) {
  TracedRun run = RunTracedSearch(/*trace_id=*/7);
  std::map<int, const obs::TraceSpan*> shard_spans;
  for (const obs::TraceSpan* span : run.trace->spans()) {
    if (span->name() == "shard") shard_spans[span->shard()] = span;
  }
  ASSERT_EQ(shard_spans.size(), 4u);

  // Per shard, the span's absorbed counters equal that shard's stats.
  ASSERT_EQ(run.stats.shards.size(), 4u);
  uint64_t view_results = 0, matching = 0, fetches = 0, store_bytes = 0;
  uint64_t pages = 0, buffer_hits = 0, pdt_bytes = 0, view_bytes = 0;
  for (const ShardStats& shard : run.stats.shards) {
    const obs::TraceSpan* span = shard_spans.at(shard.shard);
    EXPECT_EQ(span->counter("view_results"), shard.view_results);
    EXPECT_EQ(span->counter("matching_results"), shard.matching_results);
    EXPECT_EQ(span->counter("store_fetches"), shard.store_fetches);
    EXPECT_EQ(span->counter("store_bytes"), shard.store_bytes);
    EXPECT_EQ(span->counter("pages_read"), shard.pages_read);
    EXPECT_EQ(span->counter("buffer_hits"), shard.buffer_hits);
    view_results += span->counter("view_results");
    matching += span->counter("matching_results");
    fetches += span->counter("store_fetches");
    store_bytes += span->counter("store_bytes");
    pages += span->counter("pages_read");
    buffer_hits += span->counter("buffer_hits");
    pdt_bytes += span->counter("pdt_bytes");
    view_bytes += span->counter("view_bytes");
  }
  // And summed over the shard spans, they equal the global totals — the
  // invariant that makes a trace a faithful decomposition of the stats.
  EXPECT_EQ(view_results, run.stats.search.view_results);
  EXPECT_EQ(matching, run.stats.search.matching_results);
  EXPECT_EQ(fetches, run.stats.search.store_fetches);
  EXPECT_EQ(store_bytes, run.stats.search.store_bytes);
  EXPECT_EQ(pages, run.stats.search.pages_read);
  EXPECT_EQ(buffer_hits, run.stats.search.buffer_hits);
  EXPECT_EQ(pdt_bytes, run.stats.search.pdt.pdt_bytes);
  EXPECT_EQ(view_bytes, run.stats.search.view_bytes);
  EXPECT_GT(view_results, 0u);
  EXPECT_GT(fetches, 0u);
}

TEST(TraceTest, SerializationIsByteStableModuloTiming) {
  // Two identical searches (racing shard tasks and all) must serialize
  // to identical trees once the timing fields are stripped: shard spans
  // are pre-created in shard order, so scheduler interleaving is
  // invisible in the rendered tree.
  TracedRun a = RunTracedSearch(/*trace_id=*/99);
  TracedRun b = RunTracedSearch(/*trace_id=*/99);
  EXPECT_EQ(StripTimings(a.serialized), StripTimings(b.serialized));

  // The rendered tree contains the full pipeline in flame order.
  const std::string stripped = StripTimings(a.serialized);
  EXPECT_NE(stripped.find("trace 99\n"), std::string::npos);
  EXPECT_NE(stripped.find("\n  shard shard=0"), std::string::npos);
  EXPECT_NE(stripped.find("\n    plan"), std::string::npos);
  EXPECT_NE(stripped.find("\n    build_pdts"), std::string::npos);
  EXPECT_NE(stripped.find("\n    evaluate"), std::string::npos);
  EXPECT_NE(stripped.find("\n  merge"), std::string::npos);
  EXPECT_NE(stripped.find("\n  materialize"), std::string::npos);
}

TEST(TraceTest, UntracedRequestRecordsNothing) {
  workload::BookRevOptions opts;
  opts.num_books = 20;
  auto db = workload::GenerateBookRevDatabase(opts);
  auto indexes = index::BuildDatabaseIndexes(*db);
  storage::DocumentStore store(*db);
  ViewSearchEngine engine(db.get(), indexes.get(), &store);

  SearchRequest request;
  request.view = workload::BookRevView();
  request.keywords = {"xml"};
  auto cursor = engine.Open(request);  // request.trace left null
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  auto hits = (*cursor)->FetchNext(5);
  ASSERT_TRUE(hits.ok()) << hits.status();
}

}  // namespace
}  // namespace quickview::engine
