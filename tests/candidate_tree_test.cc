// Direct unit tests of the Candidate Tree data structure (paper Fig 12 /
// Appendix E): prefix insertion, CTQNodeSet merging, DescendantMap
// propagation, parent lists under both axes, and the containment
// re-parenting invariant.
#include "pdt/candidate_tree.h"

#include <gtest/gtest.h>

namespace quickview::pdt {
namespace {

using xml::DeweyId;

/// QPT: doc -> books(/) -> book(//) -> { isbn(/, m), year(/, o) }.
qpt::Qpt MakeBookQpt() {
  qpt::Qpt qpt;
  qpt.nodes.push_back(qpt::QptNode{});
  int books = qpt.AddNode(0, "books", false, true);
  int book = qpt.AddNode(books, "book", true, true);
  qpt.AddNode(book, "isbn", false, true);   // mandatory
  qpt.AddNode(book, "year", false, false);  // optional
  return qpt;
}

// Depth-to-QPT-node maps for ids drawn from the isbn and year lists on
// data path /books/book/{isbn,year}.
std::vector<std::vector<int>> IsbnMap() { return {{1}, {2}, {3}}; }
std::vector<std::vector<int>> YearMap() { return {{1}, {2}, {4}}; }

TEST(CandidateTreeTest, AddIdCreatesPrefixChain) {
  qpt::Qpt qpt = MakeBookQpt();
  CandidateTree ct(&qpt);
  ct.AddId(DeweyId::Parse("1.2.1"), IsbnMap(), 0, std::nullopt, 10);
  ASSERT_TRUE(ct.HasNodes());
  std::vector<CtNode*> lmp = ct.LeftMostPath();
  ASSERT_EQ(lmp.size(), 3u);
  EXPECT_EQ(lmp[0]->id.ToString(), "1");
  EXPECT_EQ(lmp[1]->id.ToString(), "1.2");
  EXPECT_EQ(lmp[2]->id.ToString(), "1.2.1");
  EXPECT_EQ(lmp[0]->qentries.size(), 1u);
  EXPECT_EQ(lmp[0]->qentries[0].qnode, 1);
  EXPECT_EQ(lmp[2]->qentries[0].qnode, 3);
}

TEST(CandidateTreeTest, LeafIsCandidateInteriorWaitsForMandatoryChild) {
  qpt::Qpt qpt = MakeBookQpt();
  CandidateTree ct(&qpt);
  // A year only: book must NOT become a candidate (isbn is mandatory,
  // year optional).
  ct.AddId(DeweyId::Parse("1.2.6"), YearMap(), 0, std::nullopt, 4);
  std::vector<CtNode*> lmp = ct.LeftMostPath();
  CtQEntry* book = lmp[1]->FindEntry(2);
  ASSERT_NE(book, nullptr);
  EXPECT_TRUE(ct.IsCandidate(lmp[2]->qentries[0]));  // year leaf
  EXPECT_FALSE(ct.IsCandidate(*book));
  // The isbn arrives: DM bit set, book becomes a candidate, and the
  // cascade reaches books (whose mandatory child is book).
  ct.AddId(DeweyId::Parse("1.2.9"), IsbnMap(), 1, std::nullopt, 10);
  EXPECT_TRUE(ct.IsCandidate(*book));
  CtQEntry* books = ct.LeftMostPath()[0]->FindEntry(1);
  ASSERT_NE(books, nullptr);
  EXPECT_TRUE(ct.IsCandidate(*books));
}

TEST(CandidateTreeTest, ParentListRespectsAxis) {
  qpt::Qpt qpt = MakeBookQpt();
  CandidateTree ct(&qpt);
  ct.AddId(DeweyId::Parse("1.2.1"), IsbnMap(), 0, std::nullopt, 10);
  std::vector<CtNode*> lmp = ct.LeftMostPath();
  // isbn's parent list points at the book entry of node 1.2 (child axis).
  const CtQEntry& isbn = lmp[2]->qentries[0];
  ASSERT_EQ(isbn.parent_list.size(), 1u);
  EXPECT_EQ(isbn.parent_list[0].first, lmp[1]);
  // book's parent list points at books (descendant axis across 1 level).
  const CtQEntry& book = lmp[1]->qentries[0];
  ASSERT_EQ(book.parent_list.size(), 1u);
  EXPECT_EQ(book.parent_list[0].first, lmp[0]);
}

TEST(CandidateTreeTest, SharedPrefixesMergeEntries) {
  qpt::Qpt qpt = MakeBookQpt();
  CandidateTree ct(&qpt);
  ct.AddId(DeweyId::Parse("1.2.1"), IsbnMap(), 0, std::nullopt, 10);
  ct.AddId(DeweyId::Parse("1.2.6"), YearMap(), 1, std::nullopt, 4);
  std::vector<CtNode*> lmp = ct.LeftMostPath();
  // Node 1.2 exists once with a single book entry, two leaf children.
  EXPECT_EQ(lmp[1]->qentries.size(), 1u);
  EXPECT_EQ(lmp[1]->children.size(), 2u);
  EXPECT_EQ(ct.live_nodes, 4u);
}

TEST(CandidateTreeTest, ListCountsTrackDirectIdsOnly) {
  qpt::Qpt qpt = MakeBookQpt();
  CandidateTree ct(&qpt);
  ct.AddId(DeweyId::Parse("1.2.1"), IsbnMap(), 0, std::nullopt, 10);
  ct.AddId(DeweyId::Parse("1.4.1"), IsbnMap(), 0, std::nullopt, 10);
  EXPECT_EQ(ct.ListCount(0), 2);  // prefixes don't count
  EXPECT_EQ(ct.ListCount(1), 0);
  std::vector<CtNode*> lmp = ct.LeftMostPath();
  ct.DecrementListCounts(*lmp.back());
  EXPECT_EQ(ct.ListCount(0), 1);
}

TEST(CandidateTreeTest, ReparentingPreservesContainment) {
  // Insert a deep id whose intermediate depths map to no QPT node, then
  // an id that *creates* the intermediate node: the earlier deep node
  // must move under it.
  qpt::Qpt qpt;
  qpt.nodes.push_back(qpt::QptNode{});
  int r = qpt.AddNode(0, "r", true, true);
  int x = qpt.AddNode(r, "x", true, true);  // leaf via //
  (void)x;
  CandidateTree ct(&qpt);
  // x at 1.5.2; depth 2 (the 1.5 element) maps to nothing for this path.
  ct.AddId(DeweyId::Parse("1.5.2"), {{r}, {}, {x}}, 0, std::nullopt, 1);
  // Another id maps depth 2 to r (repeating-tag scenario): node 1.5 is
  // created and must adopt 1.5.2.
  ct.AddId(DeweyId::Parse("1.5.9"), {{r}, {r}, {x}}, 0, std::nullopt, 1);
  std::vector<CtNode*> lmp = ct.LeftMostPath();
  ASSERT_EQ(lmp.size(), 3u);
  EXPECT_EQ(lmp[0]->id.ToString(), "1");
  EXPECT_EQ(lmp[1]->id.ToString(), "1.5");
  EXPECT_EQ(lmp[2]->id.ToString(), "1.5.2");
  EXPECT_EQ(lmp[2]->parent, lmp[1]);
}

TEST(CandidateTreeTest, PayloadAttachesToFullDepthNode) {
  qpt::Qpt qpt = MakeBookQpt();
  CandidateTree ct(&qpt);
  ct.AddId(DeweyId::Parse("1.2.1"), IsbnMap(), 0,
           std::optional<std::string>("111-11"), 42);
  CtNode* leaf = ct.LeftMostPath().back();
  EXPECT_TRUE(leaf->has_payload);
  ASSERT_TRUE(leaf->value.has_value());
  EXPECT_EQ(*leaf->value, "111-11");
  EXPECT_EQ(leaf->byte_length, 42u);
  EXPECT_FALSE(ct.LeftMostPath()[0]->has_payload);
}

}  // namespace
}  // namespace quickview::pdt
