// Live updates under concurrency: mutator threads insert/replace/remove
// documents through QueryService while query threads search, so the
// writer lock, the per-view data epochs, the COW store snapshots and the
// cursor leases all get exercised cross-thread. Runs under the TSan CI
// leg. The correctness claims:
//   - mutations of documents no registered view reads never perturb
//     query responses (and never invalidate their cached PDTs);
//   - every response under concurrent replacement equals the response of
//     exactly one corpus version — never a torn mix of two (snapshot
//     atomicity);
//   - a cursor opened before the storm drains the corpus version it was
//     opened against.
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/result_cursor.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "service/query_service.h"
#include "storage/document_store.h"
#include "storage/live_database.h"
#include "xml/parser.h"

namespace quickview {
namespace {

std::string BooksXml(int generation, int count) {
  std::string out = "<books>";
  for (int i = 0; i < count; ++i) {
    out += "<book><isbn>isbn-" + std::to_string(i) +
           "</isbn><title>xml search generation " +
           std::to_string(generation) +
           "</title><year>2001</year></book>";
  }
  out += "</books>";
  return out;
}

const std::string kBooksView =
    "for $b in fn:doc(books.xml)/books//book return $b";

/// Serial ground truth for one corpus version, computed with a fresh
/// from-scratch engine.
engine::SearchResponse ExpectedFor(const std::string& books_xml,
                                   const std::vector<std::string>& keywords,
                                   const engine::SearchOptions& options) {
  auto db = std::make_shared<xml::Database>();
  auto parsed = xml::ParseXml(books_xml, 1);
  EXPECT_TRUE(parsed.ok());
  db->AddDocument("books.xml", *parsed);
  auto indexes = index::BuildDatabaseIndexes(*db);
  storage::DocumentStore store(*db);
  engine::ViewSearchEngine engine(db.get(), indexes.get(), &store);
  engine::SearchRequest request;
  request.view = kBooksView;
  request.keywords = keywords;
  request.options = options;
  auto response = engine.Execute(request);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  return std::move(*response);
}

bool SameHits(const engine::SearchResponse& expected,
              const engine::SearchResponse& actual) {
  if (expected.hits.size() != actual.hits.size()) return false;
  for (size_t i = 0; i < expected.hits.size(); ++i) {
    if (expected.hits[i].xml != actual.hits[i].xml) return false;
    if (expected.hits[i].score != actual.hits[i].score) return false;
  }
  return expected.stats.view_results == actual.stats.view_results &&
         expected.stats.matching_results == actual.stats.matching_results;
}

TEST(UpdateConcurrencyTest, UnrelatedMutationsNeverPerturbQueries) {
  storage::LiveDatabase live;
  service::QueryServiceOptions options;
  options.threads = 4;
  service::QueryService service(&live, options);
  ASSERT_TRUE(service.InsertDocument("books.xml", BooksXml(0, 6)).ok());
  ASSERT_TRUE(service.RegisterView("books", kBooksView).ok());

  service::BatchQuery query{"books", {"xml", "search"},
                            engine::SearchOptions{}};
  engine::SearchResponse expected =
      ExpectedFor(BooksXml(0, 6), query.keywords, query.options);
  // Warm the single plan serially so the miss counter below is exact
  // (no warm-up race between the reader threads).
  ASSERT_TRUE(service.SearchOne(query).ok());
  ASSERT_EQ(service.stats().cache.misses, 1u);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  // Mutators hammer documents the view never reads: inserts, in-place
  // replacements and removals, all invisible to the query results.
  std::vector<std::thread> mutators;
  for (int m = 0; m < 2; ++m) {
    mutators.emplace_back([&service, &failures, m] {
      for (int i = 0; i < 60; ++i) {
        std::string name = "scratch" + std::to_string(m) + ".xml";
        if (!service
                 .InsertDocument(name, "<notes><note>v" +
                                           std::to_string(i) +
                                           "</note></notes>")
                 .ok()) {
          failures.fetch_add(1);
        }
        if (i % 5 == 4 && !service.RemoveDocument(name).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&service, &query, &expected, &failures, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto response = service.SearchOne(query);
        if (!response.ok() || !SameHits(expected, *response)) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : mutators) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The view's documents never changed: the warm PDT entry stayed valid
  // through 100+ unrelated mutations.
  EXPECT_EQ(service.stats().cache.misses, 1u);
  EXPECT_GE(service.stats().documents_inserted, 120u);
}

TEST(UpdateConcurrencyTest, ConcurrentReplacementsAreSnapshotAtomic) {
  constexpr int kVersions = 4;
  storage::LiveDatabase live;
  service::QueryServiceOptions options;
  options.threads = 4;
  service::QueryService service(&live, options);
  ASSERT_TRUE(service.InsertDocument("books.xml", BooksXml(0, 4)).ok());
  ASSERT_TRUE(service.RegisterView("books", kBooksView).ok());

  service::BatchQuery query{"books", {"xml"}, engine::SearchOptions{}};
  query.options.top_k = 16;
  // Each corpus version has a distinct book count AND generation marker,
  // so any torn read (indexes of one version, store of another) could
  // not reproduce any expected response.
  std::vector<engine::SearchResponse> expected;
  for (int v = 0; v < kVersions; ++v) {
    expected.push_back(
        ExpectedFor(BooksXml(v, 4 + v), query.keywords, query.options));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread mutator([&service, &failures] {
    for (int i = 0; i < 40; ++i) {
      int v = i % kVersions;
      if (!service.InsertDocument("books.xml", BooksXml(v, 4 + v)).ok()) {
        failures.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&service, &query, &expected, &failures, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto response = service.SearchOne(query);
        if (!response.ok()) {
          failures.fetch_add(1);
          return;
        }
        bool matched = false;
        for (const engine::SearchResponse& candidate : expected) {
          if (SameHits(candidate, *response)) {
            matched = true;
            break;
          }
        }
        if (!matched) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  mutator.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.stats().documents_inserted, 41u);
}

TEST(UpdateConcurrencyTest, CursorDrainsItsSnapshotThroughTheStorm) {
  storage::LiveDatabase live;
  service::QueryServiceOptions options;
  options.threads = 2;
  service::QueryService service(&live, options);
  ASSERT_TRUE(service.InsertDocument("books.xml", BooksXml(0, 8)).ok());
  ASSERT_TRUE(service.RegisterView("books", kBooksView).ok());

  service::BatchQuery query{"books", {"xml"}, engine::SearchOptions{}};
  query.options.top_k = 8;
  engine::SearchResponse expected =
      ExpectedFor(BooksXml(0, 8), query.keywords, query.options);

  auto cursor = service.OpenSearch(query);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  auto first = (*cursor)->FetchNext(2);
  ASSERT_TRUE(first.ok());

  // Replace and finally REMOVE the very document the cursor reads,
  // while draining it page by page from this thread.
  std::thread mutator([&service] {
    for (int i = 1; i <= 10; ++i) {
      ASSERT_TRUE(
          service.InsertDocument("books.xml", BooksXml(i, 3)).ok());
    }
    ASSERT_TRUE(service.RemoveDocument("books.xml").ok());
  });

  std::vector<engine::SearchHit> drained = std::move(*first);
  while (!(*cursor)->Done()) {
    auto page = (*cursor)->FetchNext(1);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    for (engine::SearchHit& hit : *page) drained.push_back(std::move(hit));
  }
  mutator.join();

  ASSERT_EQ(drained.size(), expected.hits.size());
  for (size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i].xml, expected.hits[i].xml) << "hit " << i;
    EXPECT_EQ(drained[i].score, expected.hits[i].score) << "hit " << i;
  }
  // The corpus the cursor saw is gone for new queries.
  auto after = service.SearchOne(query);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace quickview
