#include "xml/serializer.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace quickview::xml {
namespace {

TEST(SerializerTest, EscapesSpecialCharacters) {
  EXPECT_EQ(EscapeText("a&b<c>d\"e'f"),
            "a&amp;b&lt;c&gt;d&quot;e&apos;f");
}

TEST(SerializerTest, SerializeSubtree) {
  Document doc(1);
  NodeIndex root = doc.CreateRoot("a");
  NodeIndex b = doc.AddChild(root, "b");
  doc.node(b).text = "x<y";
  doc.AddChild(b, "c");
  EXPECT_EQ(Serialize(doc, b), "<b>x&lt;y<c></c></b>");
  EXPECT_EQ(Serialize(doc), "<a><b>x&lt;y<c></c></b></a>");
}

TEST(SerializerTest, EmptyDocument) {
  Document doc(1);
  EXPECT_EQ(Serialize(doc), "");
}

TEST(SerializerTest, ByteLengthMatchesSerializedSize) {
  // Property: SubtreeByteLength must equal the actual serialized length —
  // it is the len(e) used in score normalization (Theorem 4.1 part b).
  auto result = ParseXml(
      "<books><book isbn=\"1&amp;1\"><title>X &lt; Y</title>"
      "<year>2004</year></book><empty/></books>");
  ASSERT_TRUE(result.ok()) << result.status();
  const Document& doc = **result;
  for (NodeIndex i = 0; i < doc.size(); ++i) {
    EXPECT_EQ(SubtreeByteLength(doc, i), Serialize(doc, i).size())
        << "node " << i << " (" << doc.node(i).tag << ")";
  }
}

}  // namespace
}  // namespace quickview::xml
