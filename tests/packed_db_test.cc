// Pack -> open round trips: queries over a packed .qvpack database must
// be byte-identical to the same queries over the in-memory database —
// including cursor paging across buffer-pool eviction at tiny frame
// budgets — while reading only the pages they actually touch. The
// acceptance property of the paged storage engine lives here: on a
// ~1000-match query, Open + FetchNext(10) reads strictly fewer pages
// than a full drain, and per-query pages_read / buffer_hits surface
// through SearchStats.
#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "engine/result_cursor.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "pagestore/pack.h"
#include "pagestore/packed_db.h"
#include "service/query_service.h"
#include "storage/document_store.h"
#include "workload/bookrev_generator.h"
#include "xml/serializer.h"

namespace quickview {
namespace {

/// Everything needed to serve queries from a packed file.
struct PackedRuntime {
  std::shared_ptr<pagestore::PackedDb> db;
  std::unique_ptr<storage::DocumentStore> store;
  std::unique_ptr<service::QueryService> service;
};

struct Corpus {
  std::shared_ptr<xml::Database> db;
  std::unique_ptr<index::DatabaseIndexes> indexes;
  std::unique_ptr<storage::DocumentStore> store;
  std::string pack_path;
};

class PackedDbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new Corpus();
    // Large enough that the four-term disjunctive query below matches on
    // the order of 1000 view results (the paper's top-k regime).
    workload::BookRevOptions opts;
    opts.num_books = 1800;
    opts.max_reviews_per_book = 4;
    corpus_->db = workload::GenerateBookRevDatabase(opts);
    corpus_->indexes = index::BuildDatabaseIndexes(*corpus_->db);
    corpus_->store = std::make_unique<storage::DocumentStore>(*corpus_->db);
    corpus_->pack_path = ::testing::TempDir() + "/qvpack_bookrev.qvpack";
    Status packed = pagestore::PackDatabase(*corpus_->db, *corpus_->indexes,
                                            corpus_->pack_path);
    ASSERT_TRUE(packed.ok()) << packed;
  }

  static void TearDownTestSuite() {
    std::filesystem::remove(corpus_->pack_path);
    delete corpus_;
    corpus_ = nullptr;
  }

  static std::unique_ptr<service::QueryService> MakeMemService(
      int threads = 1) {
    service::QueryServiceOptions options;
    options.threads = threads;
    auto mem_service = std::make_unique<service::QueryService>(
        corpus_->db.get(), corpus_->indexes.get(), corpus_->store.get(),
        options);
    EXPECT_TRUE(
        mem_service->RegisterView("bookrev", workload::BookRevView()).ok());
    return mem_service;
  }

  static PackedRuntime OpenPacked(size_t frames, int threads = 1) {
    PackedRuntime runtime;
    pagestore::BufferPoolOptions pool;
    pool.frames = frames;
    auto opened = pagestore::PackedDb::Open(corpus_->pack_path, pool);
    EXPECT_TRUE(opened.ok()) << opened.status();
    runtime.db = *opened;
    runtime.store = std::make_unique<storage::DocumentStore>(runtime.db);
    service::QueryServiceOptions options;
    options.threads = threads;
    runtime.service = std::make_unique<service::QueryService>(
        nullptr, runtime.db.get(), runtime.store.get(), options);
    runtime.service->AttachBufferPool(&runtime.db->pool());
    EXPECT_TRUE(
        runtime.service->RegisterView("bookrev", workload::BookRevView())
            .ok());
    return runtime;
  }

  static service::BatchQuery MakeQuery(std::vector<std::string> keywords,
                                       bool conjunctive, size_t top_k) {
    service::BatchQuery query;
    query.view = "bookrev";
    query.keywords = std::move(keywords);
    query.options.conjunctive = conjunctive;
    query.options.top_k = top_k;
    return query;
  }

  static void ExpectIdentical(const engine::SearchResponse& mem,
                              const engine::SearchResponse& paged,
                              const std::string& label) {
    ASSERT_EQ(mem.hits.size(), paged.hits.size()) << label;
    for (size_t i = 0; i < mem.hits.size(); ++i) {
      EXPECT_EQ(mem.hits[i].score, paged.hits[i].score) << label << " #" << i;
      EXPECT_EQ(mem.hits[i].tf, paged.hits[i].tf) << label << " #" << i;
      EXPECT_EQ(mem.hits[i].byte_length, paged.hits[i].byte_length)
          << label << " #" << i;
      EXPECT_EQ(mem.hits[i].xml, paged.hits[i].xml) << label << " #" << i;
    }
    EXPECT_EQ(mem.stats.view_results, paged.stats.view_results) << label;
    EXPECT_EQ(mem.stats.matching_results, paged.stats.matching_results)
        << label;
    EXPECT_EQ(mem.stats.view_bytes, paged.stats.view_bytes) << label;
    EXPECT_EQ(mem.stats.store_fetches, paged.stats.store_fetches) << label;
    EXPECT_EQ(mem.stats.store_bytes, paged.stats.store_bytes) << label;
    EXPECT_EQ(mem.stats.pdt.ids_processed, paged.stats.pdt.ids_processed)
        << label;
    EXPECT_EQ(mem.stats.pdt.nodes_emitted, paged.stats.pdt.nodes_emitted)
        << label;
    EXPECT_EQ(mem.stats.pdt.index_probes, paged.stats.pdt.index_probes)
        << label;
    EXPECT_EQ(mem.stats.pdt.pdt_bytes, paged.stats.pdt.pdt_bytes) << label;
    // The in-memory run never touches pages.
    EXPECT_EQ(mem.stats.pages_read, 0u) << label;
  }

  /// Builds the exact child-axis pattern for a full data path such as
  /// "/books/book/isbn".
  static index::PathPattern PatternForPath(const std::string& path) {
    index::PathPattern pattern;
    for (std::string_view segment :
         SplitString(std::string_view(path).substr(1), '/')) {
      pattern.push_back(index::PathStep{false, std::string(segment)});
    }
    return pattern;
  }

  static Corpus* corpus_;
};

Corpus* PackedDbTest::corpus_ = nullptr;

TEST_F(PackedDbTest, OpenListsDocuments) {
  PackedRuntime packed = OpenPacked(64);
  std::vector<std::string> names = packed.db->document_names();
  ASSERT_EQ(names.size(), corpus_->db->documents().size());
  for (const std::string& name : names) {
    EXPECT_NE(corpus_->db->GetDocument(name), nullptr) << name;
    EXPECT_TRUE(packed.db->GetView(name).has_value()) << name;
  }
  EXPECT_FALSE(packed.db->GetView("no-such-doc").has_value());
}

TEST_F(PackedDbTest, PagedIndexViewsMatchInMemory) {
  PackedRuntime packed = OpenPacked(64);
  for (const auto& [name, doc] : corpus_->db->documents()) {
    (void)doc;
    std::optional<index::DocumentIndexView> mem_view =
        corpus_->indexes->GetView(name);
    std::optional<index::DocumentIndexView> paged_view =
        packed.db->GetView(name);
    ASSERT_TRUE(mem_view.has_value());
    ASSERT_TRUE(paged_view.has_value());

    for (const index::PathPattern& pattern :
         {index::PathPattern{{false, "books"}, {true, "book"}},
          index::PathPattern{{true, "isbn"}},
          index::PathPattern{{false, "reviews"}, {true, "content"}},
          index::PathPattern{{true, "no_such_tag"}}}) {
      auto mem_paths = mem_view->paths->ExpandPattern(pattern);
      auto paged_paths = paged_view->paths->ExpandPattern(pattern);
      ASSERT_TRUE(mem_paths.ok());
      ASSERT_TRUE(paged_paths.ok()) << paged_paths.status();
      EXPECT_EQ(*mem_paths, *paged_paths);

      auto mem_rows = mem_view->paths->LookUpPerPath(pattern, true);
      auto paged_rows = paged_view->paths->LookUpPerPath(pattern, true);
      ASSERT_TRUE(mem_rows.ok());
      ASSERT_TRUE(paged_rows.ok()) << paged_rows.status();
      ASSERT_EQ(mem_rows->size(), paged_rows->size());
      for (size_t r = 0; r < mem_rows->size(); ++r) {
        EXPECT_EQ((*mem_rows)[r].path, (*paged_rows)[r].path);
        ASSERT_EQ((*mem_rows)[r].entries.size(),
                  (*paged_rows)[r].entries.size());
        for (size_t e = 0; e < (*mem_rows)[r].entries.size(); ++e) {
          EXPECT_EQ((*mem_rows)[r].entries[e].id,
                    (*paged_rows)[r].entries[e].id);
          EXPECT_EQ((*mem_rows)[r].entries[e].byte_length,
                    (*paged_rows)[r].entries[e].byte_length);
          EXPECT_EQ((*mem_rows)[r].entries[e].value,
                    (*paged_rows)[r].entries[e].value);
        }
      }
    }

    for (const std::string& term :
         {std::string("xml"), std::string("search"),
          std::string("never-seen-term")}) {
      auto mem_postings = mem_view->terms->Lookup(term);
      auto paged_postings = paged_view->terms->Lookup(term);
      ASSERT_TRUE(mem_postings.ok());
      ASSERT_TRUE(paged_postings.ok()) << paged_postings.status();
      ASSERT_EQ(mem_postings->size(), paged_postings->size()) << term;
      for (size_t i = 0; i < mem_postings->size(); ++i) {
        EXPECT_EQ((*mem_postings)[i].id, (*paged_postings)[i].id);
        EXPECT_EQ((*mem_postings)[i].tf, (*paged_postings)[i].tf);
      }
      auto mem_len = mem_view->terms->ListLength(term);
      auto paged_len = paged_view->terms->ListLength(term);
      ASSERT_TRUE(mem_len.ok());
      ASSERT_TRUE(paged_len.ok());
      EXPECT_EQ(*mem_len, *paged_len) << term;
      if (!mem_postings->empty()) {
        uint32_t tf = 0;
        auto contains =
            paged_view->terms->Contains(term, (*mem_postings)[0].id, &tf);
        ASSERT_TRUE(contains.ok());
        EXPECT_TRUE(*contains);
        EXPECT_EQ(tf, (*mem_postings)[0].tf);
        auto absent = paged_view->terms->Contains(
            term, xml::DeweyId({424242u, 1u}), nullptr);
        ASSERT_TRUE(absent.ok());
        EXPECT_FALSE(*absent);
      }
    }
  }
}

TEST_F(PackedDbTest, DocumentFetchesMatchInMemory) {
  PackedRuntime packed = OpenPacked(64);
  for (const auto& [name, doc] : corpus_->db->documents()) {
    const index::DocumentIndexes* doc_indexes = corpus_->indexes->Get(name);
    ASSERT_NE(doc_indexes, nullptr);
    uint32_t root = doc->root_component();

    // Sample elements on every distinct data path of the document.
    for (const std::string& path :
         doc_indexes->path_index.distinct_path_list()) {
      std::vector<index::PathEntry> entries =
          doc_indexes->path_index.LookUpId(PatternForPath(path));
      ASSERT_FALSE(entries.empty()) << path;
      size_t step = std::max<size_t>(1, entries.size() / 5);
      for (size_t i = 0; i < entries.size(); i += step) {
        const xml::DeweyId& id = entries[i].id;

        storage::DocumentStore::Stats mem_stats, paged_stats;
        xml::Document mem_copy(root), paged_copy(root);
        Status mem_status = corpus_->store->CopySubtree(
            root, id, &mem_copy, xml::kInvalidNode, &mem_stats);
        Status paged_status = packed.store->CopySubtree(
            root, id, &paged_copy, xml::kInvalidNode, &paged_stats);
        ASSERT_TRUE(mem_status.ok()) << mem_status;
        ASSERT_TRUE(paged_status.ok()) << paged_status;
        EXPECT_EQ(xml::Serialize(mem_copy), xml::Serialize(paged_copy));
        EXPECT_EQ(mem_stats.bytes_fetched, paged_stats.bytes_fetched);
        EXPECT_EQ(mem_stats.fetch_calls, paged_stats.fetch_calls);
        EXPECT_GT(paged_stats.pages_read + paged_stats.buffer_hits, 0u);
        EXPECT_EQ(mem_stats.pages_read, 0u);

        uint64_t mem_len = 0, paged_len = 0;
        ASSERT_TRUE(
            corpus_->store->GetSubtreeLength(root, id, &mem_len).ok());
        ASSERT_TRUE(
            packed.store->GetSubtreeLength(root, id, &paged_len).ok());
        EXPECT_EQ(mem_len, paged_len);

        std::string mem_value, paged_value;
        ASSERT_TRUE(corpus_->store->GetValue(root, id, &mem_value).ok());
        ASSERT_TRUE(packed.store->GetValue(root, id, &paged_value).ok());
        EXPECT_EQ(mem_value, paged_value);
      }
    }

    // Misses keep the in-memory error contract.
    xml::Document sink(root);
    Status missing = packed.store->CopySubtree(
        root, xml::DeweyId({root, 999999u}), &sink, xml::kInvalidNode);
    EXPECT_EQ(missing.code(), StatusCode::kNotFound);
    uint64_t len_sink = 0;
    Status bad_root = packed.store->GetSubtreeLength(
        775533u, xml::DeweyId({775533u}), &len_sink);
    EXPECT_EQ(bad_root.code(), StatusCode::kNotFound);
  }
}

TEST_F(PackedDbTest, SearchBatchByteIdenticalToInMemory) {
  std::unique_ptr<service::QueryService> mem_service = MakeMemService();
  PackedRuntime packed = OpenPacked(128);

  std::vector<service::BatchQuery> batch = {
      MakeQuery({"xml", "search"}, true, 10),
      MakeQuery({"database"}, true, 5),
      MakeQuery({"xml", "web", "database"}, false, 25),
      MakeQuery({"search"}, false, 50),
      MakeQuery({"xml", "search", "web", "database"}, false, 10),
      MakeQuery({"nonexistentterm"}, true, 10),
  };
  std::vector<Result<engine::SearchResponse>> mem_responses =
      mem_service->SearchBatch(batch);
  std::vector<Result<engine::SearchResponse>> paged_responses =
      packed.service->SearchBatch(batch);
  ASSERT_EQ(mem_responses.size(), paged_responses.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(mem_responses[i].ok()) << mem_responses[i].status();
    ASSERT_TRUE(paged_responses[i].ok()) << paged_responses[i].status();
    ExpectIdentical(*mem_responses[i], *paged_responses[i],
                    "query " + std::to_string(i));
  }

  // The packed run surfaces its I/O through the service stats.
  service::QueryService::Stats stats = packed.service->stats();
  EXPECT_GT(stats.engine.buffer.misses, 0u);
  service::QueryService::Stats mem_stats = mem_service->stats();
  EXPECT_EQ(mem_stats.engine.buffer.misses, 0u);
}

TEST_F(PackedDbTest, ConcurrentPackedBatchesAreIdentical) {
  std::unique_ptr<service::QueryService> mem_service = MakeMemService();
  PackedRuntime packed = OpenPacked(32, /*threads=*/4);

  std::vector<service::BatchQuery> batch;
  for (int r = 0; r < 4; ++r) {
    batch.push_back(MakeQuery({"xml", "search"}, true, 10));
    batch.push_back(MakeQuery({"web"}, false, 20));
    batch.push_back(MakeQuery({"database", "search"}, false, 15));
  }
  std::vector<Result<engine::SearchResponse>> mem_responses =
      mem_service->SearchBatch(batch);
  std::vector<Result<engine::SearchResponse>> paged_responses =
      packed.service->SearchBatch(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(paged_responses[i].ok()) << paged_responses[i].status();
    ExpectIdentical(*mem_responses[i], *paged_responses[i],
                    "concurrent query " + std::to_string(i));
  }
}

TEST_F(PackedDbTest, CursorPagingAcrossEvictionMatchesInMemoryDrain) {
  // Four frames: every B-tree descent and record fetch cycles the pool,
  // so paging correctness cannot lean on residency.
  PackedRuntime packed = OpenPacked(4);
  std::unique_ptr<service::QueryService> mem_service = MakeMemService();
  service::BatchQuery query =
      MakeQuery({"xml", "search", "web"}, false, 200);

  auto mem_response = mem_service->SearchOne(query);
  ASSERT_TRUE(mem_response.ok());

  auto cursor = packed.service->OpenSearch(query);
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  std::vector<engine::SearchHit> paged_hits;
  while (!(*cursor)->Done()) {
    auto page = (*cursor)->FetchNext(7);
    ASSERT_TRUE(page.ok()) << page.status();
    for (engine::SearchHit& hit : *page) {
      paged_hits.push_back(std::move(hit));
    }
  }
  ASSERT_EQ(paged_hits.size(), mem_response->hits.size());
  for (size_t i = 0; i < paged_hits.size(); ++i) {
    EXPECT_EQ(paged_hits[i].score, mem_response->hits[i].score) << i;
    EXPECT_EQ(paged_hits[i].xml, mem_response->hits[i].xml) << i;
  }
  pagestore::BufferPoolStats pool_stats = packed.db->pool().stats();
  EXPECT_GT(pool_stats.evictions, 0u);
}

TEST_F(PackedDbTest, LazyPageIoFirstPageReadsStrictlyFewerPagesThanDrain) {
  service::BatchQuery query =
      MakeQuery({"xml", "search", "web", "database"}, false, 1u << 20);

  // Cursor A: open + one page of 10.
  PackedRuntime first_page_run = OpenPacked(256);
  auto cursor = first_page_run.service->OpenSearch(query);
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  ASSERT_GT((*cursor)->stats().search.matching_results, 900u)
      << "acceptance query must match on the order of 1000 results";
  // The lazy-I/O guarantee at open: no node-record page has been read
  // for materialization yet (store fetches == 0 => pages_read == 0).
  EXPECT_EQ((*cursor)->stats().search.store_fetches, 0u);
  EXPECT_EQ((*cursor)->stats().search.pages_read, 0u);

  auto page = (*cursor)->FetchNext(10);
  ASSERT_TRUE(page.ok());
  ASSERT_EQ(page->size(), 10u);
  uint64_t first_page_pages = (*cursor)->stats().search.pages_read;
  uint64_t first_page_hits = (*cursor)->stats().search.buffer_hits;
  EXPECT_GT(first_page_pages + first_page_hits, 0u);

  // Cursor B (fresh pool, same budget): full drain.
  PackedRuntime drain_run = OpenPacked(256);
  auto drain_cursor = drain_run.service->OpenSearch(query);
  ASSERT_TRUE(drain_cursor.ok());
  auto everything = (*drain_cursor)->FetchNext((*drain_cursor)->pending());
  ASSERT_TRUE(everything.ok());
  ASSERT_EQ(everything->size(), (*drain_cursor)->stats().search.matching_results);
  uint64_t drain_pages = (*drain_cursor)->stats().search.pages_read;

  EXPECT_LT(first_page_pages, drain_pages)
      << "FetchNext(10) must read strictly fewer pages than materializing "
      << "all " << everything->size() << " matches";
}

// Atomic values far beyond one page must pack: the disk path index keys
// rows by (path, ordinal) and keeps the value in the row payload, so a
// multi-KB text node spills to posting-run chains instead of blowing
// the one-page leaf-entry limit (regression: pack used to fail with
// InvalidArgument on any document holding ~4 KB of text in one node).
TEST(PackedDbLongValues, MultiPageTextNodesRoundTrip) {
  const std::string pack_path =
      ::testing::TempDir() + "/qvpack_long_values.qvpack";
  std::string huge(3 * pagestore::kPageSize + 123, 'x');
  for (size_t i = 0; i < huge.size(); i += 97) huge[i] = ' ';

  xml::Database db;
  auto doc = std::make_shared<xml::Document>(1);
  xml::NodeIndex root = doc->CreateRoot("reviews");
  xml::NodeIndex review = doc->AddChild(root, "review");
  doc->node(doc->AddChild(review, "content")).text = huge;
  doc->node(doc->AddChild(review, "rate")).text = "5";
  db.AddDocument("reviews.xml", doc);
  auto indexes = index::BuildDatabaseIndexes(db);

  Status packed = pagestore::PackDatabase(db, *indexes, pack_path);
  ASSERT_TRUE(packed.ok()) << packed;
  auto opened = pagestore::PackedDb::Open(pack_path,
                                          pagestore::BufferPoolOptions{8});
  ASSERT_TRUE(opened.ok()) << opened.status();

  // The huge value survives both surfaces: path-index rows (value in
  // the row payload) and node records (GetValue).
  std::optional<index::DocumentIndexView> view =
      (*opened)->GetView("reviews.xml");
  ASSERT_TRUE(view.has_value());
  index::PathPattern pattern{{false, "reviews"},
                             {false, "review"},
                             {false, "content"}};
  auto rows = view->paths->LookUpPerPath(pattern, /*with_values=*/true);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 1u);
  ASSERT_EQ((*rows)[0].entries.size(), 1u);
  EXPECT_EQ((*rows)[0].entries[0].value, huge);

  auto by_value = view->paths->LookUpValue(pattern, huge);
  ASSERT_TRUE(by_value.ok()) << by_value.status();
  ASSERT_EQ(by_value->size(), 1u);
  auto no_match = view->paths->LookUpValue(pattern, "absent");
  ASSERT_TRUE(no_match.ok());
  EXPECT_TRUE(no_match->empty());

  storage::DocumentStore paged_store(*opened);
  std::string value;
  ASSERT_TRUE(
      paged_store.GetValue(1, (*rows)[0].entries[0].id, &value).ok());
  EXPECT_EQ(value, huge);

  std::filesystem::remove(pack_path);
}

}  // namespace
}  // namespace quickview
