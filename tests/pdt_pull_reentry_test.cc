// Regression tests for the pull-loop re-entry hazard in PDT generation:
// GeneratePdt's step-1 loop iterates a CT node's qentries while Pull() can
// route a new id through CandidateTree::AddId, which may push_back another
// entry onto that very node (repeated tag names make one id match several
// QPT nodes) and reallocate the vector under the iterator. A three-step
// descendant query over a spine of at least five repeated tags triggers
// the reallocation deterministically (a spine of four does not); run these
// under the Sanitize build — ASan flagged the original defect as a
// heap-use-after-free at generate_pdt.cc:97.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "index/index_builder.h"
#include "pdt/generate_pdt.h"
#include "qpt/generate_qpt.h"
#include "xml/dom.h"
#include "xml/parser.h"
#include "xquery/parser.h"

namespace quickview::pdt {
namespace {

std::vector<qpt::Qpt> QptsFor(const std::string& view) {
  auto query = xquery::ParseQuery(view);
  EXPECT_TRUE(query.ok()) << query.status();
  auto qpts = qpt::GenerateQpts(&*query);
  EXPECT_TRUE(qpts.ok()) << qpts.status();
  return std::move(*qpts);
}

int CountTag(const xml::Document& doc, const std::string& tag) {
  int count = 0;
  for (xml::NodeIndex i = 0; i < doc.size(); ++i) {
    if (doc.node(i).tag == tag) ++count;
  }
  return count;
}

std::string Spine(int depth, const std::string& payload) {
  std::string text;
  for (int i = 0; i < depth; ++i) text += "<a>";
  text += payload;
  for (int i = 0; i < depth; ++i) text += "</a>";
  return text;
}

// The minimal trigger: each spine node matches all three QPT steps, so the
// second and third steps' pulls append entries to CT nodes the first
// step's pull already created — while the pull loop holds an iterator into
// those nodes' qentries (the vector grows 1 -> 2 and reallocates).
TEST(PdtPullReentryTest, MinimalRepeatedTagSpine) {
  auto doc = xml::ParseXml(Spine(5, "<leaf>x</leaf>"), 1);
  ASSERT_TRUE(doc.ok());
  xml::Database db;
  db.AddDocument("deep.xml", *doc);
  auto indexes = index::BuildDatabaseIndexes(db);
  auto qpts = QptsFor("for $x in fn:doc(deep.xml)//a//a//a return $x");
  auto pdt = GeneratePdt(qpts[0], *indexes->Get("deep.xml"), {}, nullptr);
  ASSERT_TRUE(pdt.ok()) << pdt.status();
  EXPECT_EQ(CountTag(**pdt, "a"), 5);
}

// A deeper spine drives the same vectors across further capacity
// boundaries (2 -> 4) and keeps every list non-exhausted for many rounds,
// so the pull loop revisits growing nodes on every left-most-path walk.
TEST(PdtPullReentryTest, DeepSpineCrossesCapacityBoundaries) {
  auto doc = xml::ParseXml(Spine(16, "<leaf>x</leaf>"), 1);
  ASSERT_TRUE(doc.ok());
  xml::Database db;
  db.AddDocument("deep.xml", *doc);
  auto indexes = index::BuildDatabaseIndexes(db);
  auto qpts = QptsFor("for $x in fn:doc(deep.xml)//a//a//a return $x");
  auto pdt = GeneratePdt(qpts[0], *indexes->Get("deep.xml"), {}, nullptr);
  ASSERT_TRUE(pdt.ok()) << pdt.status();
  EXPECT_EQ(CountTag(**pdt, "a"), 16);
}

// Same hazard with keyword inverted lists in play: the skewed sibling run
// keeps the "at most two ids per list" rule pulling while the spine nodes'
// entry vectors are still growing.
TEST(PdtPullReentryTest, KeywordListsInterleaveWithStructuralPulls) {
  std::string payload = "<p>needle</p>";
  for (int i = 0; i < 64; ++i) payload += "<p>hay</p>";
  auto doc = xml::ParseXml(Spine(8, payload), 1);
  ASSERT_TRUE(doc.ok());
  xml::Database db;
  db.AddDocument("kw.xml", *doc);
  auto indexes = index::BuildDatabaseIndexes(db);
  auto qpts = QptsFor("for $x in fn:doc(kw.xml)//a//a//a return $x");
  auto pdt =
      GeneratePdt(qpts[0], *indexes->Get("kw.xml"), {"needle"}, nullptr);
  ASSERT_TRUE(pdt.ok()) << pdt.status();
  EXPECT_EQ(CountTag(**pdt, "a"), 8);
}

}  // namespace
}  // namespace quickview::pdt
