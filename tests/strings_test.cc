#include "common/strings.h"

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

namespace quickview {
namespace {

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto pieces = SplitString("a/b//c", '/');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "c");
  EXPECT_EQ(SplitString("", '/').size(), 1u);
}

TEST(StringsTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringsTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("XML Search-42"), "xml search-42");
}

TEST(StringsTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("1995", &v));
  EXPECT_EQ(v, 1995);
  EXPECT_TRUE(ParseDouble("-3.5", &v));
  EXPECT_EQ(v, -3.5);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("12abc", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1995), "1995");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
}

TEST(StatusTest, ToStringAndCodes) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Status::NotFound("nope");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = []() -> Result<int> { return Status::Internal("boom"); };
  auto outer = [&]() -> Status {
    QV_ASSIGN_OR_RETURN(int v, inner());
    (void)v;
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace quickview
