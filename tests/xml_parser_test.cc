#include "xml/parser.h"

#include <gtest/gtest.h>

#include "xml/serializer.h"

namespace quickview::xml {
namespace {

TEST(XmlParserTest, SimpleDocument) {
  auto result = ParseXml("<a><b>hello</b><c/></a>");
  ASSERT_TRUE(result.ok()) << result.status();
  const Document& doc = **result;
  EXPECT_EQ(doc.node(doc.root()).tag, "a");
  ASSERT_EQ(doc.node(doc.root()).children.size(), 2u);
  const Node& b = doc.node(doc.node(doc.root()).children[0]);
  EXPECT_EQ(b.tag, "b");
  EXPECT_EQ(b.text, "hello");
  EXPECT_EQ(doc.node(doc.node(doc.root()).children[1]).tag, "c");
}

TEST(XmlParserTest, AttributesBecomeLeadingSubelements) {
  auto result = ParseXml("<book isbn=\"111-11\"><title>X</title></book>");
  ASSERT_TRUE(result.ok()) << result.status();
  const Document& doc = **result;
  ASSERT_EQ(doc.node(doc.root()).children.size(), 2u);
  const Node& isbn = doc.node(doc.node(doc.root()).children[0]);
  EXPECT_EQ(isbn.tag, "isbn");
  EXPECT_EQ(isbn.text, "111-11");
  EXPECT_EQ(isbn.id.ToString(), "1.1");  // attribute gets the first ordinal
}

TEST(XmlParserTest, EntitiesAndCdata) {
  auto result = ParseXml("<a>x &amp; y &lt;z&gt; &#65;<![CDATA[<raw>]]></a>");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)->node(0).text, "x & y <z> A<raw>");
}

TEST(XmlParserTest, PrologCommentsAndPis) {
  auto result = ParseXml(
      "<?xml version=\"1.0\"?><!DOCTYPE a><!-- hi --><a><!-- in -->"
      "<?pi data?><b/></a><!-- after -->");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)->node(0).tag, "a");
  EXPECT_EQ((*result)->node(0).children.size(), 1u);
}

TEST(XmlParserTest, WhitespaceOnlyTextIsDropped) {
  auto result = ParseXml("<a>\n  <b>x</b>\n</a>");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)->node(0).text, "");
}

TEST(XmlParserTest, CustomRootComponent) {
  auto result = ParseXml("<a><b/></a>", 5);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)->node(0).id.ToString(), "5");
  EXPECT_EQ((*result)->node(1).id.ToString(), "5.1");
}

TEST(XmlParserTest, ErrorsCarryPositions) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a><b></a>").ok());       // mismatched end tag
  EXPECT_FALSE(ParseXml("<a>").ok());              // unterminated
  EXPECT_FALSE(ParseXml("<a></a><b></b>").ok());   // two roots
  EXPECT_FALSE(ParseXml("<a x=novalue></a>").ok());  // unquoted attribute
  Status s = ParseXml("<a><b></a>").status();
  EXPECT_NE(s.message().find("byte"), std::string::npos);
}

TEST(XmlParserTest, RoundTripThroughSerializer) {
  const char* kInput =
      "<books><book><isbn>111-11-1111</isbn><title>XML Web Services</title>"
      "<year>2004</year></book><book><isbn>222-22-2222</isbn>"
      "<title>Artificial Intelligence</title></book></books>";
  auto result = ParseXml(kInput);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(Serialize(**result), kInput);
}

TEST(XmlParserTest, DeepNesting) {
  std::string input;
  for (int i = 0; i < 50; ++i) input += "<a>";
  input += "x";
  for (int i = 0; i < 50; ++i) input += "</a>";
  auto result = ParseXml(input);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)->size(), 50u);
}

}  // namespace
}  // namespace quickview::xml
