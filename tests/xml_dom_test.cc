#include "xml/dom.h"

#include <gtest/gtest.h>

namespace quickview::xml {
namespace {

TEST(DocumentTest, RootAndChildrenGetDeweyIds) {
  Document doc(1);
  NodeIndex root = doc.CreateRoot("books");
  EXPECT_EQ(doc.node(root).id.ToString(), "1");
  NodeIndex book1 = doc.AddChild(root, "book");
  NodeIndex book2 = doc.AddChild(root, "book");
  NodeIndex isbn = doc.AddChild(book1, "isbn");
  EXPECT_EQ(doc.node(book1).id.ToString(), "1.1");
  EXPECT_EQ(doc.node(book2).id.ToString(), "1.2");
  EXPECT_EQ(doc.node(isbn).id.ToString(), "1.1.1");
  EXPECT_EQ(doc.node(isbn).parent, book1);
}

TEST(DocumentTest, RootComponentIsConfigurable) {
  Document doc(7);
  doc.CreateRoot("reviews");
  NodeIndex child = doc.AddChild(doc.root(), "review");
  EXPECT_EQ(doc.node(child).id.ToString(), "7.1");
}

TEST(DocumentTest, AddChildWithSparseIds) {
  Document doc(1);
  NodeIndex root = doc.CreateRoot("books");
  NodeIndex a = doc.AddChildWithId(root, "book", DeweyId::Parse("1.5"));
  NodeIndex b = doc.AddChildWithId(root, "book", DeweyId::Parse("1.9"));
  // Contiguous AddChild continues past the last sparse ordinal.
  NodeIndex c = doc.AddChild(root, "book");
  EXPECT_EQ(doc.node(a).id.ToString(), "1.5");
  EXPECT_EQ(doc.node(b).id.ToString(), "1.9");
  EXPECT_EQ(doc.node(c).id.ToString(), "1.10");
}

TEST(DocumentTest, FindByDeweyExactAndMissing) {
  Document doc(1);
  NodeIndex root = doc.CreateRoot("books");
  NodeIndex book = doc.AddChildWithId(root, "book", DeweyId::Parse("1.4"));
  NodeIndex isbn = doc.AddChildWithId(book, "isbn", DeweyId::Parse("1.4.2"));
  EXPECT_EQ(doc.FindByDewey(DeweyId::Parse("1")), root);
  EXPECT_EQ(doc.FindByDewey(DeweyId::Parse("1.4")), book);
  EXPECT_EQ(doc.FindByDewey(DeweyId::Parse("1.4.2")), isbn);
  EXPECT_EQ(doc.FindByDewey(DeweyId::Parse("1.4.1")), kInvalidNode);
  EXPECT_EQ(doc.FindByDewey(DeweyId::Parse("2")), kInvalidNode);
  EXPECT_EQ(doc.FindByDewey(DeweyId()), kInvalidNode);
}

TEST(DocumentTest, SubtreeNodesIsPreorder) {
  Document doc(1);
  NodeIndex root = doc.CreateRoot("a");
  NodeIndex b = doc.AddChild(root, "b");
  NodeIndex c = doc.AddChild(b, "c");
  NodeIndex d = doc.AddChild(root, "d");
  std::vector<NodeIndex> order = doc.SubtreeNodes(root);
  EXPECT_EQ(order, (std::vector<NodeIndex>{root, b, c, d}));
}

TEST(DatabaseTest, LookupByNameAndRoot) {
  Database db;
  auto books = std::make_shared<Document>(1);
  books->CreateRoot("books");
  auto reviews = std::make_shared<Document>(2);
  reviews->CreateRoot("reviews");
  db.AddDocument("books.xml", books);
  db.AddDocument("reviews.xml", reviews);

  EXPECT_EQ(db.GetDocument("books.xml"), books.get());
  EXPECT_EQ(db.GetDocument("missing.xml"), nullptr);
  EXPECT_EQ(db.GetDocumentByRoot(2), reviews.get());
  ASSERT_NE(db.GetNameByRoot(1), nullptr);
  EXPECT_EQ(*db.GetNameByRoot(1), "books.xml");
  EXPECT_EQ(db.NextRootComponent(), 3u);
}

}  // namespace
}  // namespace quickview::xml
