#include "pdt/generate_pdt.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "qpt/generate_qpt.h"
#include "workload/bookrev_generator.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/tokenizer.h"
#include "xquery/parser.h"

namespace quickview::pdt {
namespace {

std::vector<qpt::Qpt> QptsFor(const std::string& view) {
  auto query = xquery::ParseQuery(view);
  EXPECT_TRUE(query.ok()) << query.status();
  auto qpts = qpt::GenerateQpts(&*query);
  EXPECT_TRUE(qpts.ok()) << qpts.status();
  return std::move(*qpts);
}

class PdtFig1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    // Three books: one passing the year predicate with isbn, one failing
    // it, one passing without isbn (optional-edge case).
    auto books = xml::ParseXml(
        "<books>"
        "<book><isbn>111</isbn><title>XML Web Services</title>"
        "<year>1996</year></book>"
        "<book><isbn>222</isbn><title>Old One</title><year>1990</year>"
        "</book>"
        "<book><title>No Isbn</title><year>2001</year></book>"
        "</books>",
        1);
    // Reviews: two joinable, one with no isbn (mandatory-edge case).
    auto reviews = xml::ParseXml(
        "<reviews>"
        "<review><isbn>111</isbn><content>about search</content></review>"
        "<review><content>orphan review</content></review>"
        "<review><isbn>333</isbn><content>unrelated</content></review>"
        "</reviews>",
        2);
    ASSERT_TRUE(books.ok() && reviews.ok());
    db_.AddDocument("books.xml", *books);
    db_.AddDocument("reviews.xml", *reviews);
    indexes_ = index::BuildDatabaseIndexes(db_);
    qpts_ = QptsFor(workload::BookRevView());
    ASSERT_EQ(qpts_.size(), 2u);
  }

  xml::Database db_;
  std::unique_ptr<index::DatabaseIndexes> indexes_;
  std::vector<qpt::Qpt> qpts_;
  std::vector<std::string> keywords_{"xml", "search"};
};

TEST_F(PdtFig1Test, BookPdtKeepsOnlyPredicateSatisfyingBooks) {
  PdtBuildStats stats;
  auto pdt = GeneratePdt(qpts_[0], *indexes_->Get("books.xml"), keywords_,
                         &stats);
  ASSERT_TRUE(pdt.ok()) << pdt.status();
  const xml::Document& doc = **pdt;
  ASSERT_TRUE(doc.has_root());
  EXPECT_EQ(doc.node(doc.root()).tag, "books");
  // Books 1 (year 1996) and 3 (year 2001) survive; book 2 (1990) pruned.
  EXPECT_NE(doc.FindByDewey(xml::DeweyId::Parse("1.1")), xml::kInvalidNode);
  EXPECT_EQ(doc.FindByDewey(xml::DeweyId::Parse("1.2")), xml::kInvalidNode);
  EXPECT_NE(doc.FindByDewey(xml::DeweyId::Parse("1.3")), xml::kInvalidNode);
  EXPECT_GT(stats.nodes_emitted, 0u);
  EXPECT_GT(stats.ids_processed, 0u);
}

TEST_F(PdtFig1Test, ValuesSelectivelyMaterialized) {
  auto pdt =
      GeneratePdt(qpts_[0], *indexes_->Get("books.xml"), keywords_, nullptr);
  ASSERT_TRUE(pdt.ok());
  const xml::Document& doc = **pdt;
  // isbn ('v') carries its value; year ('v' via predicate) carries its
  // value; title ('c') carries statistics but no text.
  xml::NodeIndex isbn = doc.FindByDewey(xml::DeweyId::Parse("1.1.1"));
  ASSERT_NE(isbn, xml::kInvalidNode);
  EXPECT_EQ(doc.node(isbn).text, "111");
  xml::NodeIndex year = doc.FindByDewey(xml::DeweyId::Parse("1.1.3"));
  ASSERT_NE(year, xml::kInvalidNode);
  EXPECT_EQ(doc.node(year).text, "1996");
  xml::NodeIndex title = doc.FindByDewey(xml::DeweyId::Parse("1.1.2"));
  ASSERT_NE(title, xml::kInvalidNode);
  EXPECT_TRUE(doc.node(title).text.empty());
  ASSERT_TRUE(doc.node(title).stats.has_value());
  EXPECT_TRUE(doc.node(title).stats->content_pruned);
}

TEST_F(PdtFig1Test, ContentNodeStatsMatchMaterializedContent) {
  auto pdt =
      GeneratePdt(qpts_[0], *indexes_->Get("books.xml"), keywords_, nullptr);
  ASSERT_TRUE(pdt.ok());
  const xml::Document& doc = **pdt;
  const xml::Document& base = *db_.GetDocument("books.xml");
  xml::NodeIndex title = doc.FindByDewey(xml::DeweyId::Parse("1.1.2"));
  ASSERT_NE(title, xml::kInvalidNode);
  const xml::NodeStats& stats = *doc.node(title).stats;
  xml::NodeIndex base_title = base.FindByDewey(xml::DeweyId::Parse("1.1.2"));
  // tf values per keyword match a direct count over the base subtree
  // (Theorem 4.1 part c).
  ASSERT_EQ(stats.term_tf.size(), 2u);
  EXPECT_EQ(stats.term_tf[0],
            xml::SubtreeTermFrequency(base, base_title, "xml"));
  EXPECT_EQ(stats.term_tf[1],
            xml::SubtreeTermFrequency(base, base_title, "search"));
  // Byte length matches the serialized base subtree (part b).
  EXPECT_EQ(stats.byte_length, xml::SubtreeByteLength(base, base_title));
  EXPECT_EQ(stats.source_doc, 1u);
  EXPECT_EQ(stats.source_id.ToString(), "1.1.2");
}

TEST_F(PdtFig1Test, OptionalEdgeKeepsBookWithoutIsbn) {
  auto pdt =
      GeneratePdt(qpts_[0], *indexes_->Get("books.xml"), keywords_, nullptr);
  ASSERT_TRUE(pdt.ok());
  // Book 3 has no isbn but year 2001 passes: present with title+year only.
  const xml::Document& doc = **pdt;
  xml::NodeIndex book3 = doc.FindByDewey(xml::DeweyId::Parse("1.3"));
  ASSERT_NE(book3, xml::kInvalidNode);
  EXPECT_EQ(doc.node(book3).children.size(), 2u);
}

TEST_F(PdtFig1Test, MandatoryEdgePrunesReviewWithoutIsbn) {
  auto pdt = GeneratePdt(qpts_[1], *indexes_->Get("reviews.xml"), keywords_,
                         nullptr);
  ASSERT_TRUE(pdt.ok());
  const xml::Document& doc = **pdt;
  // Review 2 (no isbn) pruned; reviews 1 and 3 kept (the join with books
  // happens later, in the evaluator).
  EXPECT_NE(doc.FindByDewey(xml::DeweyId::Parse("2.1")), xml::kInvalidNode);
  EXPECT_EQ(doc.FindByDewey(xml::DeweyId::Parse("2.2")), xml::kInvalidNode);
  EXPECT_NE(doc.FindByDewey(xml::DeweyId::Parse("2.3")), xml::kInvalidNode);
}

TEST_F(PdtFig1Test, PdtIsSmallerThanBase) {
  PdtBuildStats stats;
  auto pdt = GeneratePdt(qpts_[0], *indexes_->Get("books.xml"), keywords_,
                         &stats);
  ASSERT_TRUE(pdt.ok());
  const xml::Document& base = *db_.GetDocument("books.xml");
  EXPECT_LT(stats.pdt_bytes, xml::SubtreeByteLength(base, base.root()));
}

TEST(PdtEdgeCasesTest, EmptyResultProducesEmptyDocument) {
  auto books = xml::ParseXml(
      "<books><book><year>1980</year><title>Old</title></book></books>", 1);
  ASSERT_TRUE(books.ok());
  xml::Database db;
  db.AddDocument("books.xml", *books);
  auto indexes = index::BuildDatabaseIndexes(db);
  auto qpts = QptsFor(
      "for $b in fn:doc(books.xml)/books//book where $b/year > 1995 "
      "return <r>{$b/title}</r>");
  auto pdt = GeneratePdt(qpts[0], *indexes->Get("books.xml"), {}, nullptr);
  ASSERT_TRUE(pdt.ok()) << pdt.status();
  // The root has no qualifying book: nothing satisfies the descendant
  // constraint, so the PDT is empty.
  EXPECT_FALSE((*pdt)->has_root());
}

TEST(PdtEdgeCasesTest, DescendantGapSynthesizesPlaceholders) {
  auto doc = xml::ParseXml(
      "<r><wrap><deep><item><k>1</k></item></deep></wrap></r>", 1);
  ASSERT_TRUE(doc.ok());
  xml::Database db;
  db.AddDocument("d.xml", *doc);
  auto indexes = index::BuildDatabaseIndexes(db);
  auto qpts = QptsFor("for $i in fn:doc(d.xml)//item return <o>{$i/k}</o>");
  auto pdt = GeneratePdt(qpts[0], *indexes->Get("d.xml"), {}, nullptr);
  ASSERT_TRUE(pdt.ok()) << pdt.status();
  const xml::Document& out = **pdt;
  ASSERT_TRUE(out.has_root());
  // item sits at depth 4; the unmentioned r/wrap/deep ancestors appear as
  // structural placeholders so Dewey positions are preserved.
  xml::NodeIndex item = out.FindByDewey(xml::DeweyId::Parse("1.1.1.1"));
  ASSERT_NE(item, xml::kInvalidNode);
  EXPECT_EQ(out.node(item).tag, "item");
}

TEST(PdtEdgeCasesTest, RepeatingTagsTwigAASlashA) {
  // QPT //a//a over nested a's: only a-elements with an a-descendant AND
  // an a-ancestor qualify for the inner node; outer ones for the outer.
  auto doc = xml::ParseXml("<a><a><a><b/></a></a><c/></a>", 1);
  ASSERT_TRUE(doc.ok());
  xml::Database db;
  db.AddDocument("d.xml", *doc);
  auto indexes = index::BuildDatabaseIndexes(db);
  auto qpts = QptsFor("for $x in fn:doc(d.xml)//a//a return $x");
  auto pdt = GeneratePdt(qpts[0], *indexes->Get("d.xml"), {}, nullptr);
  ASSERT_TRUE(pdt.ok()) << pdt.status();
  const xml::Document& out = **pdt;
  ASSERT_TRUE(out.has_root());
  // The inner two a's (1.1, 1.1.1) are results; 1 is kept as their
  // ancestor (it matches the outer QPT node).
  EXPECT_NE(out.FindByDewey(xml::DeweyId::Parse("1.1")), xml::kInvalidNode);
  EXPECT_NE(out.FindByDewey(xml::DeweyId::Parse("1.1.1")),
            xml::kInvalidNode);
  // c (1.2) and b (1.1.1.1) match nothing.
  EXPECT_EQ(out.FindByDewey(xml::DeweyId::Parse("1.2")), xml::kInvalidNode);
  EXPECT_EQ(out.FindByDewey(xml::DeweyId::Parse("1.1.1.1")),
            xml::kInvalidNode);
}

}  // namespace
}  // namespace quickview::pdt
