#include "xml/dewey_id.h"

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

namespace quickview::xml {
namespace {

TEST(DeweyIdTest, ParseAndToString) {
  EXPECT_EQ(DeweyId::Parse("1.2.3").ToString(), "1.2.3");
  EXPECT_EQ(DeweyId::Parse("").ToString(), "");
  EXPECT_EQ(DeweyId::Parse("42").ToString(), "42");
  EXPECT_EQ(DeweyId::Parse("1.0.7").components(),
            (std::vector<uint32_t>{1, 0, 7}));
}

TEST(DeweyIdTest, DepthAndEmpty) {
  EXPECT_TRUE(DeweyId().empty());
  EXPECT_EQ(DeweyId().depth(), 0u);
  EXPECT_EQ(DeweyId::Parse("1.2.3").depth(), 3u);
}

TEST(DeweyIdTest, ParentAndPrefix) {
  DeweyId id = DeweyId::Parse("1.2.3");
  EXPECT_EQ(id.Parent().ToString(), "1.2");
  EXPECT_EQ(id.Prefix(1).ToString(), "1");
  EXPECT_EQ(id.Prefix(3), id);
  EXPECT_TRUE(DeweyId::Parse("1").Parent().empty());
  EXPECT_TRUE(DeweyId().Parent().empty());
}

TEST(DeweyIdTest, Child) {
  EXPECT_EQ(DeweyId::Parse("1.2").Child(7).ToString(), "1.2.7");
  EXPECT_EQ(DeweyId().Child(1).ToString(), "1");
}

TEST(DeweyIdTest, PrefixRelations) {
  DeweyId anc = DeweyId::Parse("1.2");
  DeweyId desc = DeweyId::Parse("1.2.3.4");
  EXPECT_TRUE(anc.IsPrefixOf(desc));
  EXPECT_TRUE(anc.IsPrefixOf(anc));
  EXPECT_TRUE(anc.IsAncestorOf(desc));
  EXPECT_FALSE(anc.IsAncestorOf(anc));
  EXPECT_FALSE(desc.IsAncestorOf(anc));
  EXPECT_TRUE(DeweyId::Parse("1.2.3").IsParentOf(desc));
  EXPECT_FALSE(anc.IsParentOf(desc));
  // Sibling prefixes are unrelated.
  EXPECT_FALSE(DeweyId::Parse("1.3").IsPrefixOf(desc));
}

TEST(DeweyIdTest, DocumentOrder) {
  // Ancestors precede descendants; siblings order by component.
  EXPECT_LT(DeweyId::Parse("1"), DeweyId::Parse("1.1"));
  EXPECT_LT(DeweyId::Parse("1.1"), DeweyId::Parse("1.2"));
  EXPECT_LT(DeweyId::Parse("1.2"), DeweyId::Parse("1.2.1"));
  EXPECT_LT(DeweyId::Parse("1.2.9"), DeweyId::Parse("1.10"));  // numeric
}

TEST(DeweyIdTest, CommonPrefixLength) {
  EXPECT_EQ(DeweyId::Parse("1.2.3").CommonPrefixLength(
                DeweyId::Parse("1.2.5.6")),
            2u);
  EXPECT_EQ(DeweyId::Parse("2").CommonPrefixLength(DeweyId::Parse("1")), 0u);
  EXPECT_EQ(DeweyId().CommonPrefixLength(DeweyId::Parse("1")), 0u);
}

TEST(DeweyIdTest, EncodeDecodeRoundTrip) {
  for (const char* text : {"", "1", "1.2.3", "4294967295.0.17"}) {
    DeweyId id = DeweyId::Parse(text);
    EXPECT_EQ(DeweyId::Decode(id.Encode()), id) << text;
  }
}

TEST(DeweyIdTest, EncodedByteOrderEqualsDeweyOrder) {
  // Property: the fixed-width encoding preserves document order, which is
  // what makes encoded ids usable directly as B+-tree keys.
  std::mt19937_64 rng(99);
  std::vector<DeweyId> ids;
  for (int i = 0; i < 500; ++i) {
    std::vector<uint32_t> components;
    size_t depth = 1 + rng() % 5;
    for (size_t d = 0; d < depth; ++d) {
      components.push_back(static_cast<uint32_t>(rng() % 7));
    }
    ids.emplace_back(std::move(components));
  }
  for (size_t i = 0; i + 1 < ids.size(); ++i) {
    bool dewey_less = ids[i] < ids[i + 1];
    bool bytes_less = ids[i].Encode() < ids[i + 1].Encode();
    EXPECT_EQ(dewey_less, bytes_less)
        << ids[i].ToString() << " vs " << ids[i + 1].ToString();
  }
}

}  // namespace
}  // namespace quickview::xml
