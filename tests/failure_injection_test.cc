// Failure injection and robustness: malformed inputs must come back as
// Status errors — never crashes, never silent wrong answers. The last
// section pins down the crash-injection registry (common/failpoint.h)
// that the WAL crash harness builds on.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

#include "baseline/gtp_termjoin.h"
#include "common/failpoint.h"
#include "baseline/naive_engine.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "storage/document_store.h"
#include "workload/bookrev_generator.h"
#include "xml/parser.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

namespace quickview {
namespace {

TEST(FuzzLiteTest, MutatedXmlNeverCrashesParser) {
  const std::string seed_doc =
      "<books><book isbn=\"1&amp;2\"><title>XML &lt;Web&gt;</title>"
      "<!-- c --><year>2004</year><![CDATA[x]]></book></books>";
  std::mt19937_64 rng(7);
  for (int i = 0; i < 500; ++i) {
    std::string mutated = seed_doc;
    int edits = 1 + rng() % 4;
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng() % mutated.size();
      switch (rng() % 3) {
        case 0:
          mutated[pos] = static_cast<char>('!' + rng() % 90);
          break;
        case 1:
          mutated.erase(pos, 1 + rng() % 3);
          break;
        case 2:
          mutated.insert(pos, 1, static_cast<char>('!' + rng() % 90));
          break;
      }
      if (mutated.empty()) break;
    }
    auto result = xml::ParseXml(mutated);  // ok or error, never UB
    if (result.ok()) {
      EXPECT_TRUE((*result)->has_root());
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(FuzzLiteTest, MutatedQueriesNeverCrashParser) {
  const std::string seed_query = workload::BookRevKeywordQuery();
  std::mt19937_64 rng(11);
  for (int i = 0; i < 500; ++i) {
    std::string mutated = seed_query;
    int edits = 1 + rng() % 5;
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      size_t pos = rng() % mutated.size();
      switch (rng() % 3) {
        case 0:
          mutated[pos] = static_cast<char>('!' + rng() % 90);
          break;
        case 1:
          mutated.erase(pos, 1 + rng() % 5);
          break;
        case 2:
          mutated.insert(pos, 1, "(){}[]$/<>'&|"[rng() % 13]);
          break;
      }
    }
    auto query = xquery::ParseKeywordQuery(mutated);
    if (!query.ok()) {
      EXPECT_FALSE(query.status().message().empty());
    }
  }
}

class InjectionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = workload::GenerateBookRevDatabase(workload::BookRevOptions{});
    indexes_ = index::BuildDatabaseIndexes(*db_);
    store_ = std::make_unique<storage::DocumentStore>(*db_);
  }
  std::shared_ptr<xml::Database> db_;
  std::unique_ptr<index::DatabaseIndexes> indexes_;
  std::unique_ptr<storage::DocumentStore> store_;
};

// View-form request through the unified entry point.
Result<engine::SearchResponse> ExecView(
    const engine::ViewSearchEngine& engine, const std::string& view,
    std::vector<std::string> keywords,
    engine::SearchOptions options = {}) {
  engine::SearchRequest request;
  request.view = view;
  request.keywords = std::move(keywords);
  request.options = options;
  return engine.Execute(request);
}

TEST_F(InjectionFixture, MissingIndexIsReportedNotCrashed) {
  // An engine wired to an index set lacking one referenced document.
  index::DatabaseIndexes partial;
  partial.Put("books.xml", index::BuildDocumentIndexes(
                               *db_->GetDocument("books.xml")));
  engine::ViewSearchEngine engine(db_.get(), &partial, store_.get());
  auto response = ExecView(engine, workload::BookRevView(), {"xml"});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);

  baseline::GtpTermJoinEngine gtp(db_.get(), &partial, store_.get());
  auto gtp_response = gtp.SearchView(workload::BookRevView(), {"xml"},
                                     engine::SearchOptions{});
  ASSERT_FALSE(gtp_response.ok());
  EXPECT_EQ(gtp_response.status().code(), StatusCode::kNotFound);
}

TEST_F(InjectionFixture, RecursiveFunctionIsRejected) {
  engine::ViewSearchEngine engine(db_.get(), indexes_.get(), store_.get());
  auto response = ExecView(engine,
                           "declare function spin($x) { spin($x) } "
                           "spin(fn:doc(books.xml)//book)",
                           {"xml"});
  EXPECT_FALSE(response.ok());
}

TEST_F(InjectionFixture, RecursiveFunctionInEvaluatorIsBounded) {
  auto query = xquery::ParseQuery(
      "declare function spin($x) { spin($x) } "
      "spin(fn:doc(books.xml)//book)");
  ASSERT_TRUE(query.ok());
  xquery::Evaluator evaluator(db_.get());
  auto result = evaluator.Evaluate(*query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kEvalError);
}

TEST_F(InjectionFixture, WrongArityFunctionCall) {
  auto query = xquery::ParseQuery(
      "declare function f($a, $b) { $a } f(fn:doc(books.xml))");
  ASSERT_TRUE(query.ok());
  xquery::Evaluator evaluator(db_.get());
  EXPECT_FALSE(evaluator.Evaluate(*query).ok());
}

TEST_F(InjectionFixture, ViewsOutsideTheGrammarAreRejectedUpfront) {
  engine::ViewSearchEngine engine(db_.get(), indexes_.get(), store_.get());
  // Navigation into constructed content is outside the supported subset.
  auto response = ExecView(
      engine, "for $x in <a><b>t</b></a> return $x/b", {"t"});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnsupported);
}

TEST_F(InjectionFixture, EmptyKeywordListIsRejected) {
  // ftcontains() still parses (a trivially-true filter at the grammar
  // level), but a keyword search without keywords has nothing to rank by
  // — the engine boundary rejects it instead of silently returning the
  // whole view.
  engine::ViewSearchEngine engine(db_.get(), indexes_.get(), store_.get());
  engine::SearchOptions options;
  options.top_k = 3;
  auto response = ExecView(engine, workload::BookRevView(), {}, options);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(InjectionFixture, EmptyDatabase) {
  xml::Database empty;
  auto indexes = index::BuildDatabaseIndexes(empty);
  storage::DocumentStore store(empty);
  engine::ViewSearchEngine engine(&empty, indexes.get(), &store);
  auto response = ExecView(engine, "fn:doc(books.xml)//book", {"x"});
  EXPECT_FALSE(response.ok());
}

TEST(FailpointTest, DisarmedInjectionIsANoop) {
  fail::Disarm();
  ASSERT_FALSE(fail::Armed());
  // Crossing an injection point while disarmed must cost nothing and
  // kill nothing — this is the "free when off" half of the contract.
  for (int i = 0; i < 1000; ++i) QUICKVIEW_INJECT("test.noop");
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "fp_noop.bin").string();
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  const char buf[] = "must not be written by a disarmed torn-write point";
  EXPECT_FALSE(fail::MaybeTornWrite("test.noop", fd, buf, sizeof buf));
  ::close(fd);
  EXPECT_EQ(std::filesystem::file_size(path), 0u);
}

TEST(FailpointTest, CrashFiresAtExactlyTheNthCrossing) {
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(pipe_fds[0]);
    fail::ArmCrash(/*countdown=*/3);
    for (int i = 0; i < 10; ++i) {
      // One byte per crossing, sent BEFORE the injection point: the
      // parent counts how far the child got before the crash.
      char tick = 't';
      (void)::write(pipe_fds[1], &tick, 1);
      QUICKVIEW_INJECT("test.countdown");
    }
    _exit(0);  // only reached if the countdown never fired
  }
  ::close(pipe_fds[1]);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), fail::kCrashExitCode);
  char drained[16];
  ssize_t got = 0;
  ssize_t n = 0;
  while ((n = ::read(pipe_fds[0], drained, sizeof drained)) > 0) got += n;
  ::close(pipe_fds[0]);
  EXPECT_EQ(got, 3);  // crossings 1 and 2 passed; the 3rd crashed
}

TEST(FailpointTest, TornWriteLeavesAStrictPrefix) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "fp_torn.bin").string();
  std::filesystem::remove(path);
  std::string buffer;
  for (int i = 0; i < 100; ++i) buffer.push_back(static_cast<char>('A' + i % 26));
  pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) _exit(2);
    fail::ArmCrash(/*countdown=*/1, /*torn_seed=*/1234);
    fail::MaybeTornWrite("test.torn", fd, buffer.data(), buffer.size());
    _exit(3);  // MaybeTornWrite must not return once the countdown expired
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), fail::kCrashExitCode);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(static_cast<bool>(in));
  std::ostringstream written;
  written << in.rdbuf();
  // A torn write is a STRICT prefix: shorter than the buffer, and byte
  // for byte identical as far as it goes.
  EXPECT_LT(written.str().size(), buffer.size());
  EXPECT_EQ(written.str(), buffer.substr(0, written.str().size()));
}

TEST_F(InjectionFixture, KeywordsAreCaseNormalized) {
  engine::ViewSearchEngine engine(db_.get(), indexes_.get(), store_.get());
  auto upper = ExecView(engine, workload::BookRevView(), {"XML"});
  auto lower = ExecView(engine, workload::BookRevView(), {"xml"});
  ASSERT_TRUE(upper.ok() && lower.ok());
  EXPECT_EQ(upper->stats.matching_results, lower->stats.matching_results);
}

}  // namespace
}  // namespace quickview
