#include "baseline/projection.h"

#include <gtest/gtest.h>

#include "qpt/generate_qpt.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/parser.h"

namespace quickview::baseline {
namespace {

ProjectionPath MakePath(std::initializer_list<std::pair<bool, const char*>>
                            steps,
                        bool subtree) {
  ProjectionPath out;
  for (auto& [descendant, tag] : steps) {
    out.pattern.push_back(index::PathStep{descendant, tag});
  }
  out.keep_subtree = subtree;
  return out;
}

TEST(ProjectionTest, KeepsMatchesAndAncestors) {
  auto doc = xml::ParseXml(
      "<books><book><isbn>1</isbn><title>X</title></book>"
      "<shelf><label>L</label></shelf></books>");
  ASSERT_TRUE(doc.ok());
  ProjectionStats stats;
  auto projected = ProjectDocument(
      **doc, {MakePath({{false, "books"}, {true, "isbn"}}, false)}, &stats);
  EXPECT_EQ(xml::Serialize(*projected),
            "<books><book><isbn>1</isbn></book></books>");
  EXPECT_EQ(stats.elements_scanned, (*doc)->size());  // full scan, always
  EXPECT_EQ(stats.elements_kept, 3u);
}

TEST(ProjectionTest, SubtreeAnnotationMaterializesDescendants) {
  auto doc = xml::ParseXml(
      "<books><book><title>X</title><body><p>text</p></body></book>"
      "</books>");
  ASSERT_TRUE(doc.ok());
  auto projected = ProjectDocument(
      **doc, {MakePath({{true, "body"}}, true)}, nullptr);
  EXPECT_EQ(xml::Serialize(*projected),
            "<books><book><body><p>text</p></body></book></books>");
}

TEST(ProjectionTest, IsolatedPathsIgnoreTwigConstraints) {
  // PROJ semantics (paper §4): for books//book/isbn it keeps ALL books
  // with isbns — the year > 1995 twig filter is not applied. This is one
  // of the differences between PROJ and PDTs the paper calls out.
  auto doc = xml::ParseXml(
      "<books><book><isbn>1</isbn><year>1990</year></book></books>");
  ASSERT_TRUE(doc.ok());
  auto query = xquery::ParseQuery(
      "for $b in fn:doc(books.xml)/books//book where $b/year > 1995 "
      "return <r>{$b/isbn}</r>");
  ASSERT_TRUE(query.ok());
  auto qpts = qpt::GenerateQpts(&*query);
  ASSERT_TRUE(qpts.ok());
  auto paths = ProjectionPathsFromQpt((*qpts)[0]);
  auto projected = ProjectDocument(**doc, paths, nullptr);
  // The 1990 book survives projection (PDT generation would prune it).
  EXPECT_NE(xml::Serialize(*projected).find("<isbn>1</isbn>"),
            std::string::npos);
}

TEST(ProjectionTest, NoMatchesYieldsEmptyDocument) {
  auto doc = xml::ParseXml("<a><b/></a>");
  ASSERT_TRUE(doc.ok());
  auto projected =
      ProjectDocument(**doc, {MakePath({{true, "zzz"}}, false)}, nullptr);
  EXPECT_FALSE(projected->has_root());
}

TEST(ProjectionTest, PreservesDeweyIds) {
  auto doc = xml::ParseXml("<a><skip/><b>x</b></a>");
  ASSERT_TRUE(doc.ok());
  auto projected =
      ProjectDocument(**doc, {MakePath({{true, "b"}}, false)}, nullptr);
  xml::NodeIndex b = projected->FindByDewey(xml::DeweyId::Parse("1.2"));
  ASSERT_NE(b, xml::kInvalidNode);
  EXPECT_EQ(projected->node(b).tag, "b");
}

}  // namespace
}  // namespace quickview::baseline
