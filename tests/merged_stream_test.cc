// MergedRankedStream and the sharded cursor around it: cross-shard ties
// must break deterministically (shard asc, then position asc — global
// view order under the contiguous partition), empty shards must be
// transparent, the one-shard sharded engine must be byte-identical to
// the unsharded engine, and cancellation after a satisfied FetchNext(k)
// must leave no shard task running. Runs under the TSan CI leg (the
// cancellation test exercises pool workers against cursor teardown).
#include "engine/merged_ranked_stream.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/thread_pool.h"
#include "engine/result_cursor.h"
#include "engine/view_search_engine.h"
#include "storage/shard_set.h"
#include "workload/bookrev_generator.h"

namespace quickview::engine {
namespace {

RankedStream MakeStream(const std::vector<double>& scores) {
  RankedStream stream;
  for (size_t i = 0; i < scores.size(); ++i) stream.Push(scores[i], i);
  return stream;
}

TEST(MergedRankedStreamTest, CrossShardTiesBreakByShardThenPosition) {
  // Three shards, every candidate scored identically: the pop order must
  // be exactly (shard 0 pos 0..n), (shard 1 pos 0..n), ... — the global
  // view order of the contiguous partition, regardless of insert order.
  MergedRankedStream merged;
  merged.AddShard(MakeStream({0.5, 0.5}));
  merged.AddShard(MakeStream({0.5}));
  merged.AddShard(MakeStream({0.5, 0.5, 0.5}));

  std::vector<std::pair<size_t, size_t>> order;
  while (!merged.Empty()) {
    MergedRankedStream::Entry e = merged.Pop();
    EXPECT_EQ(e.score, 0.5);
    order.emplace_back(e.shard, e.position);
  }
  std::vector<std::pair<size_t, size_t>> expected{
      {0, 0}, {0, 1}, {1, 0}, {2, 0}, {2, 1}, {2, 2}};
  EXPECT_EQ(order, expected);
}

TEST(MergedRankedStreamTest, HigherScoreWinsAcrossShards) {
  MergedRankedStream merged;
  merged.AddShard(MakeStream({0.1, 0.9, 0.4}));
  merged.AddShard(MakeStream({0.8, 0.2}));
  merged.AddShard(MakeStream({0.6}));

  std::vector<double> scores;
  while (!merged.Empty()) scores.push_back(merged.Pop().score);
  std::vector<double> expected{0.9, 0.8, 0.6, 0.4, 0.2, 0.1};
  EXPECT_EQ(scores, expected);
}

TEST(MergedRankedStreamTest, EmptyShardsAreTransparent) {
  MergedRankedStream merged;
  merged.AddShard(RankedStream{});
  merged.AddShard(MakeStream({0.7, 0.3}));
  merged.AddShard(RankedStream{});
  merged.AddShard(MakeStream({0.5}));
  merged.AddShard(RankedStream{});

  EXPECT_EQ(merged.Size(), 3u);
  EXPECT_EQ(merged.Pop().score, 0.7);
  EXPECT_EQ(merged.Pop().score, 0.5);
  EXPECT_EQ(merged.Pop().score, 0.3);
  EXPECT_TRUE(merged.Empty());
}

TEST(MergedRankedStreamTest, AllShardsEmptyIsEmpty) {
  MergedRankedStream merged;
  merged.AddShard(RankedStream{});
  merged.AddShard(RankedStream{});
  EXPECT_TRUE(merged.Empty());
  EXPECT_EQ(merged.Size(), 0u);
}

TEST(MergedRankedStreamTest, OneShardDegeneratesToRankedStream) {
  const std::vector<double> scores{0.2, 0.9, 0.9, 0.1, 0.5};
  RankedStream reference = MakeStream(scores);
  MergedRankedStream merged;
  merged.AddShard(MakeStream(scores));

  while (!merged.Empty()) {
    RankedStream::Entry expected = reference.Pop();
    MergedRankedStream::Entry actual = merged.Pop();
    EXPECT_EQ(actual.score, expected.score);
    EXPECT_EQ(actual.position, expected.position);
    EXPECT_EQ(actual.shard, 0u);
  }
  EXPECT_TRUE(reference.Empty());
}

// ---------------------------------------------------------------------
// Sharded-cursor integration around the merge.

class ShardedCursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::BookRevOptions opts;
    opts.num_books = 120;
    db_ = workload::GenerateBookRevDatabase(opts);
    storage::ShardingSpec spec;
    spec.shards = 4;
    spec.colocate_tag = "isbn";
    auto shards = storage::ShardSet::Partition(*db_, spec);
    ASSERT_TRUE(shards.ok()) << shards.status();
    shards_ = std::make_unique<storage::ShardSet>(std::move(*shards));
  }

  std::vector<ShardContext> Contexts() const {
    std::vector<ShardContext> contexts;
    for (size_t i = 0; i < shards_->size(); ++i) {
      const storage::Shard& shard = shards_->shard(i);
      contexts.push_back(ShardContext{shard.database.get(),
                                      shard.index_source(),
                                      shard.store.get()});
    }
    return contexts;
  }

  static SearchRequest MakeRequest(size_t top_k = 10) {
    SearchRequest request;
    request.view = workload::BookRevView();
    request.keywords = {"xml", "search"};
    request.options.top_k = top_k;
    request.options.conjunctive = false;
    return request;
  }

  std::shared_ptr<xml::Database> db_;
  std::unique_ptr<storage::ShardSet> shards_;
};

TEST_F(ShardedCursorTest, CancellationAfterSatisfiedFetchLeavesNoTask) {
  ThreadPool pool(4);
  ViewSearchEngine engine(Contexts(), &pool);

  auto token = std::make_shared<CancellationToken>();
  SearchRequest request = MakeRequest(/*top_k=*/5);
  request.cancel = token;

  auto cursor = engine.Open(request);
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  // Open is a barrier: no shard task survives it, whatever happens next.
  EXPECT_FALSE(token->Fired());

  auto hits = (*cursor)->FetchNext(5);
  ASSERT_TRUE(hits.ok()) << hits.status();
  ASSERT_EQ(hits->size(), 5u);
  EXPECT_TRUE((*cursor)->Done());
  // The satisfied top-k budget fires the caller's token...
  EXPECT_TRUE(token->cancel_requested());
  // ...and the pool is quiescent: Drain() returns because nothing holds
  // a queued or running shard task (TSan would flag a racing leftover).
  pool.Drain();
  cursor->reset();
  pool.Drain();
}

TEST_F(ShardedCursorTest, CursorDestructionFiresToken) {
  ThreadPool pool(2);
  ViewSearchEngine engine(Contexts(), &pool);
  auto token = std::make_shared<CancellationToken>();
  SearchRequest request = MakeRequest(/*top_k=*/50);
  request.cancel = token;
  {
    auto cursor = engine.Open(request);
    ASSERT_TRUE(cursor.ok()) << cursor.status();
    auto two = (*cursor)->FetchNext(2);
    ASSERT_TRUE(two.ok());
    EXPECT_FALSE(token->cancel_requested()) << "budget not yet satisfied";
  }  // abandoned half-drained: the destructor must fire the token
  EXPECT_TRUE(token->cancel_requested());
  pool.Drain();
}

TEST_F(ShardedCursorTest, PreCancelledRequestIsRejectedTyped) {
  ThreadPool pool(2);
  ViewSearchEngine engine(Contexts(), &pool);
  auto token = std::make_shared<CancellationToken>();
  token->Cancel();
  SearchRequest request = MakeRequest();
  request.cancel = token;
  auto cursor = engine.Open(request);
  ASSERT_FALSE(cursor.ok());
  EXPECT_EQ(cursor.status().code(), StatusCode::kCancelled);
  pool.Drain();
}

TEST_F(ShardedCursorTest, OneShardShardedEngineByteIdenticalToUnsharded) {
  // The degenerate sharded engine (N=1 partition of the same corpus)
  // must reproduce the plain triple-constructed engine byte for byte.
  storage::ShardingSpec one;
  one.shards = 1;
  auto single = storage::ShardSet::Partition(*db_, one);
  ASSERT_TRUE(single.ok()) << single.status();
  const storage::Shard& shard = single->shard(0);
  ThreadPool pool(2);
  std::vector<ShardContext> contexts{ShardContext{
      shard.database.get(), shard.index_source(), shard.store.get()}};
  ViewSearchEngine sharded(std::move(contexts), &pool);

  auto indexes = index::BuildDatabaseIndexes(*db_);
  storage::DocumentStore store(*db_);
  ViewSearchEngine unsharded(db_.get(), indexes.get(), &store);

  SearchRequest request = MakeRequest(/*top_k=*/25);
  auto a = sharded.Execute(request);
  auto b = unsharded.Execute(request);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->hits.size(), b->hits.size());
  ASSERT_FALSE(a->hits.empty());
  EXPECT_EQ(a->stats.view_results, b->stats.view_results);
  EXPECT_EQ(a->stats.matching_results, b->stats.matching_results);
  for (size_t i = 0; i < a->hits.size(); ++i) {
    SCOPED_TRACE("hit " + std::to_string(i));
    EXPECT_EQ(a->hits[i].xml, b->hits[i].xml);
    EXPECT_EQ(a->hits[i].tf, b->hits[i].tf);
    EXPECT_EQ(a->hits[i].byte_length, b->hits[i].byte_length);
    EXPECT_DOUBLE_EQ(a->hits[i].score, b->hits[i].score);
  }
}

}  // namespace
}  // namespace quickview::engine
