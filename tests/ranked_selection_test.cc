// The §7 monotone-selection fast path must be result-identical to the
// full pipeline, and must refuse every non-monotone view shape.
#include "engine/ranked_selection.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "storage/document_store.h"
#include "workload/bookrev_generator.h"
#include "workload/inex_generator.h"
#include "workload/view_factory.h"

namespace quickview::engine {
namespace {

class RankedSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = workload::GenerateBookRevDatabase(workload::BookRevOptions{});
    indexes_ = index::BuildDatabaseIndexes(*db_);
    store_ = std::make_unique<storage::DocumentStore>(*db_);
    engine_ = std::make_unique<ViewSearchEngine>(db_.get(), indexes_.get(),
                                                 store_.get());
  }

  void ExpectAgreesWithFullPipeline(const std::string& view,
                                    const std::vector<std::string>& keywords,
                                    const SearchOptions& options) {
    auto fast = RankedSelectionSearch(*db_, *indexes_, store_.get(), view,
                                      keywords, options);
    ASSERT_TRUE(fast.ok()) << fast.status();
    SearchRequest request;
    request.view = view;
    request.keywords = keywords;
    request.options = options;
    auto full = engine_->Execute(request);
    ASSERT_TRUE(full.ok()) << full.status();
    ASSERT_EQ(fast->hits.size(), full->hits.size());
    EXPECT_EQ(fast->stats.view_results, full->stats.view_results);
    EXPECT_EQ(fast->stats.matching_results, full->stats.matching_results);
    EXPECT_EQ(fast->stats.view_bytes, full->stats.view_bytes);
    for (size_t i = 0; i < fast->hits.size(); ++i) {
      SCOPED_TRACE("hit " + std::to_string(i));
      EXPECT_DOUBLE_EQ(fast->hits[i].score, full->hits[i].score);
      EXPECT_EQ(fast->hits[i].tf, full->hits[i].tf);
      EXPECT_EQ(fast->hits[i].byte_length, full->hits[i].byte_length);
      EXPECT_EQ(fast->hits[i].xml, full->hits[i].xml);
    }
  }

  std::shared_ptr<xml::Database> db_;
  std::unique_ptr<index::DatabaseIndexes> indexes_;
  std::unique_ptr<storage::DocumentStore> store_;
  std::unique_ptr<ViewSearchEngine> engine_;
};

TEST_F(RankedSelectionTest, PlainSelectionAgrees) {
  ExpectAgreesWithFullPipeline(
      "for $b in fn:doc(books.xml)/books//book return $b",
      {"xml", "search"}, SearchOptions{});
}

TEST_F(RankedSelectionTest, PredicateSelectionAgrees) {
  ExpectAgreesWithFullPipeline(
      "for $b in fn:doc(books.xml)/books//book[./year > 1998] return $b",
      {"xml"}, SearchOptions{});
}

TEST_F(RankedSelectionTest, WhereSelectionAgrees) {
  ExpectAgreesWithFullPipeline(
      "for $b in fn:doc(books.xml)/books//book "
      "where $b/publisher = 'Prentice Hall' return $b",
      {"database"}, SearchOptions{});
}

TEST_F(RankedSelectionTest, DisjunctiveAndTopKAgree) {
  SearchOptions options;
  options.conjunctive = false;
  options.top_k = 3;
  ExpectAgreesWithFullPipeline(
      "for $b in fn:doc(books.xml)/books//book return $b",
      {"xml", "database"}, options);
}

TEST_F(RankedSelectionTest, SkipsEvaluationEntirely) {
  auto fast = RankedSelectionSearch(
      *db_, *indexes_, store_.get(),
      "for $b in fn:doc(books.xml)/books//book return $b", {"xml"},
      SearchOptions{});
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->timings.eval_ms, 0.0);
  EXPECT_FALSE(fast->hits.empty());
}

TEST_F(RankedSelectionTest, RejectsNonMonotoneShapes) {
  const char* kRejected[] = {
      // Join (non-monotonic per §7).
      "for $b in fn:doc(books.xml)//book "
      "for $r in fn:doc(reviews.xml)//review "
      "where $r/isbn = $b/isbn return $b",
      // Constructor output.
      "for $b in fn:doc(books.xml)//book return <r>{$b/title}</r>",
      // Projection of a child, not the bound element.
      "for $b in fn:doc(books.xml)//book return $b/title",
      // let clause.
      "let $all in fn:doc(books.xml)//book return $all",
  };
  for (const char* view : kRejected) {
    auto fast = RankedSelectionSearch(*db_, *indexes_, store_.get(), view,
                                      {"xml"}, SearchOptions{});
    ASSERT_FALSE(fast.ok()) << view;
    EXPECT_EQ(fast.status().code(), StatusCode::kUnsupported) << view;
  }
}

TEST_F(RankedSelectionTest, InexArticleSelectionAgrees) {
  workload::InexOptions opts;
  opts.target_bytes = 96 * 1024;
  auto db = workload::GenerateInexDatabase(opts);
  auto indexes = index::BuildDatabaseIndexes(*db);
  storage::DocumentStore store(*db);
  ViewSearchEngine full_engine(db.get(), indexes.get(), &store);
  std::string view =
      "for $a in fn:doc(inex.xml)/books//article[./year > 1995] return $a";
  auto keywords = workload::KeywordsForTier(workload::KeywordTier::kMedium);
  auto fast = RankedSelectionSearch(*db, *indexes, &store, view, keywords,
                                    SearchOptions{});
  ASSERT_TRUE(fast.ok()) << fast.status();
  SearchRequest request;
  request.view = view;
  request.keywords = keywords;
  auto full = full_engine.Execute(request);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(fast->hits.size(), full->hits.size());
  for (size_t i = 0; i < fast->hits.size(); ++i) {
    EXPECT_DOUBLE_EQ(fast->hits[i].score, full->hits[i].score);
    EXPECT_EQ(fast->hits[i].xml, full->hits[i].xml);
  }
}

}  // namespace
}  // namespace quickview::engine
