#include "storage/document_store.h"

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"

namespace quickview::storage {
namespace {

class DocumentStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto books = xml::ParseXml(
        "<books><book><isbn>111</isbn><title>X</title></book></books>", 1);
    ASSERT_TRUE(books.ok());
    db_.AddDocument("books.xml", *books);
    store_ = std::make_unique<DocumentStore>(db_);
  }

  xml::Database db_;
  std::unique_ptr<DocumentStore> store_;
};

TEST_F(DocumentStoreTest, CopySubtree) {
  xml::Document target(1);
  Status s = store_->CopySubtree(1, xml::DeweyId::Parse("1.1"), &target,
                                 xml::kInvalidNode);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(xml::Serialize(target),
            "<book><isbn>111</isbn><title>X</title></book>");
  EXPECT_EQ(store_->stats().fetch_calls, 1u);
  EXPECT_GT(store_->stats().bytes_fetched, 0u);
}

TEST_F(DocumentStoreTest, CopySubtreeUnderParent) {
  xml::Document target(1);
  xml::NodeIndex root = target.CreateRoot("results");
  ASSERT_TRUE(store_->CopySubtree(1, xml::DeweyId::Parse("1.1.2"), &target,
                                  root)
                  .ok());
  EXPECT_EQ(xml::Serialize(target), "<results><title>X</title></results>");
}

TEST_F(DocumentStoreTest, GetValue) {
  std::string value;
  ASSERT_TRUE(store_->GetValue(1, xml::DeweyId::Parse("1.1.1"), &value).ok());
  EXPECT_EQ(value, "111");
}

TEST_F(DocumentStoreTest, GetSubtreeLength) {
  uint64_t length = 0;
  ASSERT_TRUE(
      store_->GetSubtreeLength(1, xml::DeweyId::Parse("1.1"), &length).ok());
  EXPECT_EQ(length,
            std::string("<book><isbn>111</isbn><title>X</title></book>")
                .size());
}

TEST_F(DocumentStoreTest, ErrorsForMissing) {
  xml::Document target(1);
  EXPECT_EQ(store_->CopySubtree(9, xml::DeweyId::Parse("9.1"), &target,
                                xml::kInvalidNode)
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store_->CopySubtree(1, xml::DeweyId::Parse("1.7"), &target,
                                xml::kInvalidNode)
                .code(),
            StatusCode::kNotFound);
}

TEST_F(DocumentStoreTest, ResetStats) {
  std::string value;
  ASSERT_TRUE(store_->GetValue(1, xml::DeweyId::Parse("1.1.1"), &value).ok());
  store_->ResetStats();
  EXPECT_EQ(store_->stats().fetch_calls, 0u);
}

}  // namespace
}  // namespace quickview::storage
