// Histogram: log-linear bucket mapping must be exact below kSubBuckets,
// monotone and self-consistent above; merge is bucket-wise addition;
// concurrent recording loses nothing. Runs under the TSan CI leg.
#include "common/histogram.h"

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace quickview {
namespace {

TEST(HistogramTest, SmallValuesMapExactly) {
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(v), v);
  }
}

TEST(HistogramTest, BucketBoundariesRoundTrip) {
  // Every bucket's lower bound maps back to that bucket, and the value
  // just below it maps to the previous one.
  for (size_t i = 1; i < Histogram::kBuckets; ++i) {
    const uint64_t lower = Histogram::BucketLowerBound(i);
    EXPECT_EQ(Histogram::BucketIndex(lower), i) << "lower bound " << lower;
    EXPECT_EQ(Histogram::BucketIndex(lower - 1), i - 1)
        << "below lower bound " << lower;
  }
}

TEST(HistogramTest, BucketIndexIsMonotone) {
  // Spot-check monotonicity across octave boundaries.
  uint64_t previous = 0;
  for (uint64_t v : {uint64_t{1},    uint64_t{7},    uint64_t{8},
                     uint64_t{9},    uint64_t{15},   uint64_t{16},
                     uint64_t{17},   uint64_t{1000}, uint64_t{1024},
                     uint64_t{1025}, uint64_t{1} << 40,
                     std::numeric_limits<uint64_t>::max()}) {
    const size_t index = Histogram::BucketIndex(v);
    EXPECT_GE(index, previous) << "value " << v;
    EXPECT_LT(index, Histogram::kBuckets) << "value " << v;
    previous = index;
  }
}

TEST(HistogramTest, QuantizationErrorBounded) {
  // The lower bound never overstates, and understates by less than one
  // sub-bucket width (1/8th relative).
  for (uint64_t v : {uint64_t{12},  uint64_t{100},  uint64_t{999},
                     uint64_t{4096}, uint64_t{123456789}}) {
    const uint64_t lower = Histogram::BucketLowerBound(
        Histogram::BucketIndex(v));
    EXPECT_LE(lower, v);
    EXPECT_GT(lower + lower / Histogram::kSubBuckets + 1, v) << "value " << v;
  }
}

TEST(HistogramTest, CountSumAndQuantiles) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.ValueAtQuantile(0.5), 0u);
  // 1..100: exact quantiles up to bucket quantization.
  for (uint64_t v = 1; v <= 100; ++v) histogram.Record(v);
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_EQ(histogram.sum(), 5050u);
  EXPECT_EQ(histogram.ValueAtQuantile(0.0),
            Histogram::BucketLowerBound(Histogram::BucketIndex(1)));
  EXPECT_EQ(histogram.ValueAtQuantile(1.0),
            Histogram::BucketLowerBound(Histogram::BucketIndex(100)));
  // The median bucket holds 50; p50 is its lower bound.
  EXPECT_EQ(histogram.ValueAtQuantile(0.5),
            Histogram::BucketLowerBound(Histogram::BucketIndex(50)));
  EXPECT_LE(histogram.ValueAtQuantile(0.5), 50u);
  EXPECT_GE(histogram.ValueAtQuantile(0.99), 90u);
}

TEST(HistogramTest, MergeAddsBucketwise) {
  Histogram a;
  Histogram b;
  for (uint64_t v = 0; v < 50; ++v) a.Record(v);
  for (uint64_t v = 1000; v < 1050; ++v) b.Record(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(b.count(), 50u);  // merge source unchanged
  uint64_t total = 0;
  for (const auto& [lower, n] : a.NonEmptyBuckets()) total += n;
  EXPECT_EQ(total, 100u);
  EXPECT_GE(a.ValueAtQuantile(1.0), 1000u);
  EXPECT_LT(a.ValueAtQuantile(0.25), 50u);
}

TEST(HistogramTest, ConcurrentRecordLosesNothing) {
  Histogram histogram;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<uint64_t>(t) * 1000 + (i % 97));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  uint64_t total = 0;
  for (const auto& [lower, n] : histogram.NonEmptyBuckets()) total += n;
  EXPECT_EQ(total, kThreads * kPerThread);
}

}  // namespace
}  // namespace quickview
