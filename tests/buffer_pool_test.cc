// BufferPool behavior: hit/miss/eviction accounting, LRU replacement
// order, pins protecting in-use frames, and thread-safety of concurrent
// fetches against one shared pool (the QueryService sharing model).
#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pagestore/buffer_pool.h"
#include "pagestore/paged_file.h"

namespace quickview::pagestore {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  static constexpr int kPages = 16;

  void SetUp() override {
    path_ = ::testing::TempDir() + "/qvpack_pool_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".qvpack";
    auto writer = PagedFileWriter::Create(path_);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < kPages; ++i) {
      PageId id = (*writer)->Allocate();
      ids_.push_back(id);
      ASSERT_TRUE((*writer)
                      ->WritePage(id, PageType::kNodeRecords,
                                  "page-" + std::to_string(i), kInvalidPage)
                      .ok());
    }
    ASSERT_TRUE((*writer)->Finish(ids_[0]).ok());
    auto file = PagedFile::Open(path_);
    ASSERT_TRUE(file.ok()) << file.status();
    file_ = std::move(*file);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
  std::vector<PageId> ids_;
  std::unique_ptr<PagedFile> file_;
};

TEST_F(BufferPoolTest, HitAndMissAccounting) {
  BufferPool pool(file_.get(), BufferPoolOptions{8});
  PageAccounting acct;
  auto first = pool.Fetch(ids_[0], &acct);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ((*first)->payload, "page-0");
  EXPECT_EQ(acct.pages_read, 1u);
  EXPECT_EQ(acct.buffer_hits, 0u);
  EXPECT_EQ(acct.bytes_read, static_cast<uint64_t>(kPageSize));

  auto again = pool.Fetch(ids_[0], &acct);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(acct.pages_read, 1u);
  EXPECT_EQ(acct.buffer_hits, 1u);

  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.frames_in_use, 1u);
}

TEST_F(BufferPoolTest, LruEviction) {
  BufferPool pool(file_.get(), BufferPoolOptions{2});
  ASSERT_TRUE(pool.Fetch(ids_[0], nullptr).ok());
  ASSERT_TRUE(pool.Fetch(ids_[1], nullptr).ok());
  // Touch page 0 so page 1 is the LRU victim.
  ASSERT_TRUE(pool.Fetch(ids_[0], nullptr).ok());
  ASSERT_TRUE(pool.Fetch(ids_[2], nullptr).ok());  // evicts page 1

  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.frames_in_use, 2u);

  // Page 0 must still be resident (hit); page 1 must re-read (miss).
  PageAccounting acct;
  ASSERT_TRUE(pool.Fetch(ids_[0], &acct).ok());
  EXPECT_EQ(acct.buffer_hits, 1u);
  ASSERT_TRUE(pool.Fetch(ids_[1], &acct).ok());
  EXPECT_EQ(acct.pages_read, 1u);
}

TEST_F(BufferPoolTest, PinnedFramesSurviveEviction) {
  BufferPool pool(file_.get(), BufferPoolOptions{2});
  auto pinned = pool.Fetch(ids_[0], nullptr);
  ASSERT_TRUE(pinned.ok());

  // Flood the pool far past its budget while holding the pin.
  for (int round = 0; round < 3; ++round) {
    for (int i = 1; i < kPages; ++i) {
      ASSERT_TRUE(pool.Fetch(ids_[i], nullptr).ok());
    }
  }
  // The pinned bytes are still valid regardless of what the frame table
  // did behind our back.
  EXPECT_EQ((*pinned)->payload, "page-0");
  BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.frames_in_use, 3u);  // budget + possibly the pinned frame
}

TEST_F(BufferPoolTest, ConcurrentFetchesAreConsistent) {
  BufferPool pool(file_.get(), BufferPoolOptions{4});
  constexpr int kThreads = 8;
  constexpr int kFetchesPerThread = 500;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kFetchesPerThread; ++i) {
        int page = (t * 7 + i) % kPages;
        auto pin = pool.Fetch(ids_[static_cast<size_t>(page)], nullptr);
        if (!pin.ok() ||
            (*pin)->payload != "page-" + std::to_string(page)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kFetchesPerThread);
}

}  // namespace
}  // namespace quickview::pagestore
