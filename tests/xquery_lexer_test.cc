#include "xquery/lexer.h"

#include <gtest/gtest.h>

namespace quickview::xquery {
namespace {

std::vector<TokenKind> KindsOf(const std::string& input) {
  Lexer lexer(input);
  std::vector<TokenKind> out;
  while (true) {
    Token t = lexer.Next();
    if (t.kind == TokenKind::kEnd) break;
    out.push_back(t.kind);
  }
  return out;
}

TEST(LexerTest, BasicTokens) {
  EXPECT_EQ(KindsOf("for $x in fn:doc(books.xml)"),
            (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kVariable,
                                    TokenKind::kIdent, TokenKind::kIdent,
                                    TokenKind::kLParen, TokenKind::kIdent,
                                    TokenKind::kRParen}));
}

TEST(LexerTest, SlashVsSlashSlash) {
  EXPECT_EQ(KindsOf("/a//b"),
            (std::vector<TokenKind>{TokenKind::kSlash, TokenKind::kIdent,
                                    TokenKind::kSlashSlash,
                                    TokenKind::kIdent}));
}

TEST(LexerTest, DocNameWithDot) {
  Lexer lexer("books.xml");
  Token t = lexer.Next();
  EXPECT_EQ(t.kind, TokenKind::kIdent);
  EXPECT_EQ(t.text, "books.xml");
}

TEST(LexerTest, LoneDotIsContextItem) {
  Lexer lexer(". > 5");
  EXPECT_EQ(lexer.Next().kind, TokenKind::kDot);
  EXPECT_EQ(lexer.Next().kind, TokenKind::kGt);
  Token num = lexer.Next();
  EXPECT_EQ(num.kind, TokenKind::kNumber);
  EXPECT_EQ(num.number, 5);
}

TEST(LexerTest, StringsAndVariables) {
  Lexer lexer("$book 'XML' \"Search\"");
  Token var = lexer.Next();
  EXPECT_EQ(var.kind, TokenKind::kVariable);
  EXPECT_EQ(var.text, "book");
  Token s1 = lexer.Next();
  EXPECT_EQ(s1.kind, TokenKind::kString);
  EXPECT_EQ(s1.text, "XML");
  EXPECT_EQ(lexer.Next().text, "Search");
}

TEST(LexerTest, AssignAmpPipe) {
  EXPECT_EQ(KindsOf(":= & |"),
            (std::vector<TokenKind>{TokenKind::kAssign, TokenKind::kAmp,
                                    TokenKind::kPipe}));
}

TEST(LexerTest, PeekDoesNotConsume) {
  Lexer lexer("a b");
  EXPECT_EQ(lexer.Peek().text, "a");
  EXPECT_EQ(lexer.Peek(1).text, "b");
  EXPECT_EQ(lexer.Next().text, "a");
  EXPECT_EQ(lexer.Peek().text, "b");
}

TEST(LexerTest, RawContentMode) {
  Lexer lexer("<tag> some raw, text {$x}</tag>");
  lexer.Next();  // <
  lexer.Next();  // tag
  lexer.Next();  // >
  std::string raw = lexer.ReadRawContent();
  EXPECT_EQ(raw, " some raw, text ");
  EXPECT_EQ(lexer.Next().kind, TokenKind::kLBrace);
}

TEST(LexerTest, NumbersWithDecimals) {
  Lexer lexer("19.5");
  Token t = lexer.Next();
  EXPECT_EQ(t.kind, TokenKind::kNumber);
  EXPECT_EQ(t.number, 19.5);
}

}  // namespace
}  // namespace quickview::xquery
