#include "index/path_index.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace quickview::index {
namespace {

using xml::DeweyId;

PathPattern Pattern(std::initializer_list<std::pair<bool, const char*>> steps) {
  PathPattern out;
  for (auto& [descendant, tag] : steps) {
    out.push_back(PathStep{descendant, tag});
  }
  return out;
}

TEST(PatternMatchTest, ChildAxisExactMatch) {
  PathPattern p = Pattern({{false, "books"}, {false, "book"}});
  EXPECT_TRUE(PatternMatchesPath(p, "/books/book"));
  EXPECT_FALSE(PatternMatchesPath(p, "/books/book/isbn"));
  EXPECT_FALSE(PatternMatchesPath(p, "/books"));
}

TEST(PatternMatchTest, DescendantAxisGaps) {
  PathPattern p = Pattern({{false, "books"}, {true, "isbn"}});
  EXPECT_TRUE(PatternMatchesPath(p, "/books/book/isbn"));
  EXPECT_TRUE(PatternMatchesPath(p, "/books/isbn"));
  EXPECT_FALSE(PatternMatchesPath(p, "/journal/book/isbn"));
}

TEST(PatternMatchTest, RepeatingTags) {
  PathPattern p = Pattern({{true, "a"}, {true, "a"}});
  EXPECT_TRUE(PatternMatchesPath(p, "/a/a"));
  EXPECT_TRUE(PatternMatchesPath(p, "/a/b/a"));
  EXPECT_FALSE(PatternMatchesPath(p, "/a/b"));
  EXPECT_FALSE(PatternMatchesPath(p, "/a"));
}

TEST(PatternToStringTest, Rendering) {
  EXPECT_EQ(PatternToString(Pattern({{false, "books"}, {true, "isbn"}})),
            "/books//isbn");
}

class PathIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Fig 1's book document.
    auto parsed = xml::ParseXml(
        "<books>"
        "<book><isbn>111-11-1111</isbn><title>XML Web Services</title>"
        "<year>2004</year></book>"
        "<book><isbn>222-22-2222</isbn><title>Artificial Intelligence</title>"
        "<year>2002</year></book>"
        "<book><title>No Isbn Book</title><year>2004</year></book>"
        "</books>");
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    doc_ = *parsed;
    indexes_ = BuildDocumentIndexes(*doc_);
  }

  std::shared_ptr<xml::Document> doc_;
  std::unique_ptr<DocumentIndexes> indexes_;
};

TEST_F(PathIndexTest, DistinctPathsAndExpansion) {
  const PathIndex& index = indexes_->path_index;
  EXPECT_EQ(index.distinct_paths(), 5u);  // /books{,/book{,/isbn,/title,/year}}
  auto paths = index.ExpandPattern(Pattern({{false, "books"}, {true, "isbn"}}));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], "/books/book/isbn");
}

TEST_F(PathIndexTest, LookUpIdMergesInDeweyOrder) {
  auto entries = indexes_->path_index.LookUpId(
      Pattern({{false, "books"}, {true, "book"}, {false, "year"}}));
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].id.ToString(), "1.1.3");
  EXPECT_EQ(entries[1].id.ToString(), "1.2.3");
  EXPECT_EQ(entries[2].id.ToString(), "1.3.2");  // book without isbn
  EXPECT_FALSE(entries[0].value.has_value());
  EXPECT_GT(entries[0].byte_length, 0u);
}

TEST_F(PathIndexTest, LookUpIdValueCarriesValues) {
  auto entries = indexes_->path_index.LookUpIdValue(
      Pattern({{false, "books"}, {true, "isbn"}}));
  ASSERT_EQ(entries.size(), 2u);
  ASSERT_TRUE(entries[0].value.has_value());
  EXPECT_EQ(*entries[0].value, "111-11-1111");
  EXPECT_EQ(*entries[1].value, "222-22-2222");
}

TEST_F(PathIndexTest, LookUpValueEqualityProbe) {
  auto entries = indexes_->path_index.LookUpValue(
      Pattern({{false, "books"}, {true, "isbn"}}), "222-22-2222");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].id.ToString(), "1.2.1");
  EXPECT_TRUE(indexes_->path_index
                  .LookUpValue(Pattern({{false, "books"}, {true, "isbn"}}),
                               "nope")
                  .empty());
}

TEST_F(PathIndexTest, LookUpPerPathGroups) {
  auto rows = indexes_->path_index.LookUpPerPath(
      Pattern({{true, "book"}}), /*with_values=*/false);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].path, "/books/book");
  EXPECT_EQ(rows[0].entries.size(), 3u);
}

TEST_F(PathIndexTest, ByteLengthsMatchSerializedSubtrees) {
  auto entries =
      indexes_->path_index.LookUpId(Pattern({{false, "books"}}));
  ASSERT_EQ(entries.size(), 1u);
  // The whole document: byte length equals the root subtree size.
  EXPECT_EQ(entries[0].byte_length,
            xml::SubtreeByteLength(*doc_, doc_->root()));
}

TEST_F(PathIndexTest, NoMatchesForUnknownPattern) {
  EXPECT_TRUE(
      indexes_->path_index.LookUpId(Pattern({{true, "nothing"}})).empty());
}

}  // namespace
}  // namespace quickview::index
