#include "scoring/scorer.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace quickview::scoring {
namespace {

using xquery::Item;
using xquery::NodeHandle;
using xquery::Sequence;

std::vector<ScoredResult> RankedOf(const Sequence& results,
                                   const std::vector<std::string>& keywords,
                                   bool conjunctive) {
  return ScoreResults(results, keywords, conjunctive).ranked;
}

TEST(ScorerTest, StatisticsFromMaterializedTree) {
  auto doc = xml::ParseXml("<r><t>xml search xml</t></r>");
  ASSERT_TRUE(doc.ok());
  std::vector<uint64_t> tf;
  uint64_t bytes = 0;
  ComputeResultStatistics(NodeHandle{doc->get(), 0}, {"xml", "search", "r"},
                          &tf, &bytes);
  EXPECT_EQ(tf, (std::vector<uint64_t>{2, 1, 1}));
  EXPECT_EQ(bytes, std::string("<r><t>xml search xml</t></r>").size());
}

TEST(ScorerTest, StatisticsFromPrunedTreeUseNodeStats) {
  xml::Document doc(1);
  xml::NodeIndex root = doc.CreateRoot("r");
  xml::NodeIndex pruned = doc.AddChild(root, "t");
  xml::NodeStats stats;
  stats.term_tf = {5, 0};
  stats.byte_length = 100;
  stats.content_pruned = true;
  doc.node(pruned).stats = stats;
  // A child under the pruned node must NOT be double counted.
  xml::NodeIndex dup = doc.AddChild(pruned, "xml");
  doc.node(dup).text = "xml xml";

  std::vector<uint64_t> tf;
  uint64_t bytes = 0;
  ComputeResultStatistics(NodeHandle{&doc, root}, {"xml", "search"}, &tf,
                          &bytes);
  EXPECT_EQ(tf[0], 5u);
  EXPECT_EQ(tf[1], 0u);
  EXPECT_EQ(bytes, 100u + std::string("<r></r>").size());
}

class ScoreResultsTest : public ::testing::Test {
 protected:
  NodeHandle MakeResult(const std::string& xml_text) {
    auto doc = xml::ParseXml(xml_text);
    EXPECT_TRUE(doc.ok());
    docs_.push_back(*doc);
    return NodeHandle{docs_.back().get(), 0};
  }
  std::vector<std::shared_ptr<xml::Document>> docs_;
};

TEST_F(ScoreResultsTest, ConjunctiveRequiresAllKeywords) {
  Sequence results;
  results.push_back(Item(MakeResult("<r>xml search</r>")));
  results.push_back(Item(MakeResult("<r>xml only</r>")));
  results.push_back(Item(MakeResult("<r>nothing</r>")));
  auto scored = RankedOf(results, {"xml", "search"}, true);
  ASSERT_EQ(scored.size(), 1u);
  EXPECT_EQ(scored[0].view_position, 0u);
}

TEST_F(ScoreResultsTest, DisjunctiveRequiresAnyKeyword) {
  Sequence results;
  results.push_back(Item(MakeResult("<r>xml search</r>")));
  results.push_back(Item(MakeResult("<r>xml only</r>")));
  results.push_back(Item(MakeResult("<r>nothing</r>")));
  auto scored = RankedOf(results, {"xml", "search"}, false);
  EXPECT_EQ(scored.size(), 2u);
}

TEST_F(ScoreResultsTest, IdfFavorsRareTerms) {
  // "rare" appears in 1 of 4 results, "common" in all 4: with equal tf,
  // the rare-term result must outrank a common-term-only result.
  Sequence results;
  results.push_back(Item(MakeResult("<r>common rare</r>")));
  results.push_back(Item(MakeResult("<r>common zzz1</r>")));
  results.push_back(Item(MakeResult("<r>common zzz2</r>")));
  results.push_back(Item(MakeResult("<r>common zzz3</r>")));
  auto scored = RankedOf(results, {"common", "rare"}, false);
  ASSERT_EQ(scored.size(), 4u);
  EXPECT_EQ(scored[0].view_position, 0u);
  EXPECT_GT(scored[0].score, scored[1].score);
}

TEST_F(ScoreResultsTest, LengthNormalizationPenalizesPadding) {
  Sequence results;
  results.push_back(Item(MakeResult("<r>xml</r>")));
  results.push_back(Item(
      MakeResult("<r>xml padding padding padding padding padding</r>")));
  auto scored = RankedOf(results, {"xml"}, true);
  ASSERT_EQ(scored.size(), 2u);
  EXPECT_EQ(scored[0].view_position, 0u);
}

TEST_F(ScoreResultsTest, TieBreaksByViewPosition) {
  Sequence results;
  results.push_back(Item(MakeResult("<r>xml</r>")));
  results.push_back(Item(MakeResult("<r>xml</r>")));
  auto scored = RankedOf(results, {"xml"}, true);
  ASSERT_EQ(scored.size(), 2u);
  EXPECT_EQ(scored[0].view_position, 0u);
  EXPECT_EQ(scored[1].view_position, 1u);
}

TEST_F(ScoreResultsTest, EmptyInputsAndTopK) {
  auto scored = RankedOf({}, {"xml"}, true);
  EXPECT_TRUE(scored.empty());
  Sequence results;
  for (int i = 0; i < 5; ++i) {
    results.push_back(Item(MakeResult("<r>xml</r>")));
  }
  scored = RankedOf(results, {"xml"}, true);
  TakeTopK(&scored, 3);
  EXPECT_EQ(scored.size(), 3u);
  TakeTopK(&scored, 10);
  EXPECT_EQ(scored.size(), 3u);
}

TEST_F(ScoreResultsTest, NoKeywordsConjunctiveKeepsEverything) {
  Sequence results;
  results.push_back(Item(MakeResult("<r>a</r>")));
  auto scored = RankedOf(results, {}, true);
  EXPECT_EQ(scored.size(), 1u);
  EXPECT_EQ(scored[0].score, 0.0);
}

}  // namespace
}  // namespace quickview::scoring
