#include <gtest/gtest.h>

#include "baseline/gtp_termjoin.h"
#include "baseline/naive_engine.h"
#include "index/index_builder.h"
#include "storage/document_store.h"
#include "workload/bookrev_generator.h"

namespace quickview::baseline {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = workload::GenerateBookRevDatabase(workload::BookRevOptions{});
    indexes_ = index::BuildDatabaseIndexes(*db_);
    store_ = std::make_unique<storage::DocumentStore>(*db_);
  }

  std::shared_ptr<xml::Database> db_;
  std::unique_ptr<index::DatabaseIndexes> indexes_;
  std::unique_ptr<storage::DocumentStore> store_;
};

TEST_F(BaselineTest, NaiveSearchWorksEndToEnd) {
  NaiveEngine naive(db_.get());
  auto response = naive.Search(workload::BookRevKeywordQuery(),
                               engine::SearchOptions{});
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response->hits.empty());
  // The Baseline's cost signature: all time in evaluation (view
  // materialization), no PDT phase at all.
  EXPECT_EQ(response->timings.pdt_ms, 0.0);
  EXPECT_EQ(response->stats.pdt.ids_processed, 0u);
}

TEST_F(BaselineTest, NaiveErrorPropagation) {
  NaiveEngine naive(db_.get());
  EXPECT_FALSE(naive.Search("garbage", engine::SearchOptions{}).ok());
  EXPECT_FALSE(
      naive.SearchView("fn:doc(none.xml)//x", {"a"}, engine::SearchOptions{})
          .ok());
}

TEST_F(BaselineTest, GtpAccessesBaseDataForJoinValues) {
  GtpTermJoinEngine gtp(db_.get(), indexes_.get(), store_.get());
  auto response = gtp.SearchView(workload::BookRevView(), {"xml", "search"},
                                 engine::SearchOptions{});
  ASSERT_TRUE(response.ok()) << response.status();
  // GTP's cost signature: many base-data accesses (isbn/year values for
  // every candidate element), unlike Efficient which uses the path index.
  EXPECT_GT(response->stats.store_fetches,
            static_cast<uint64_t>(response->hits.size()));
}

TEST_F(BaselineTest, GtpHandlesEmptyMatches) {
  GtpTermJoinEngine gtp(db_.get(), indexes_.get(), store_.get());
  auto response = gtp.SearchView(workload::BookRevView(), {"qqqabsent"},
                                 engine::SearchOptions{});
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->hits.empty());
}

}  // namespace
}  // namespace quickview::baseline
