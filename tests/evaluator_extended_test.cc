// Extended evaluator semantics: comparison matrix, effective booleans in
// conditionals, multi-clause FLWOR, invariant-hoisting visibility, and
// environment shadowing.
#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

namespace quickview::xquery {
namespace {

class EvaluatorExtendedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = xml::ParseXml(
        "<data>"
        "<n><v>7</v></n><n><v>07</v></n><n><v>100</v></n>"
        "<s><v>abc</v></s><s><v>abd</v></s>"
        "<empty/>"
        "</data>",
        1);
    ASSERT_TRUE(doc.ok());
    db_.AddDocument("data.xml", *doc);
  }

  Result<Sequence> Run(const std::string& query_text) {
    auto query = ParseQuery(query_text);
    if (!query.ok()) return query.status();
    // Keep the arena alive across the call for the caller's asserts.
    evaluator_ = std::make_unique<Evaluator>(&db_);
    return evaluator_->Evaluate(*query);
  }

  size_t Count(const std::string& query_text) {
    auto result = Run(query_text);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? result->size() : 0;
  }

  xml::Database db_;
  std::unique_ptr<Evaluator> evaluator_;
};

TEST_F(EvaluatorExtendedTest, NumericComparisonMatrix) {
  // = < > across numeric spellings.
  EXPECT_EQ(Count("fn:doc(data.xml)//n[./v = 7]"), 2u);     // 7 and 07
  EXPECT_EQ(Count("fn:doc(data.xml)//n[./v < 100]"), 2u);
  EXPECT_EQ(Count("fn:doc(data.xml)//n[./v > 7]"), 1u);
  EXPECT_EQ(Count("fn:doc(data.xml)//n[./v > 100]"), 0u);
}

TEST_F(EvaluatorExtendedTest, StringComparisonFallsBackLexicographic) {
  EXPECT_EQ(Count("fn:doc(data.xml)//s[./v = 'abc']"), 1u);
  EXPECT_EQ(Count("fn:doc(data.xml)//s[./v < 'abd']"), 1u);
  EXPECT_EQ(Count("fn:doc(data.xml)//s[./v > 'abc']"), 1u);
}

TEST_F(EvaluatorExtendedTest, ComparisonAgainstMissingPathIsFalse) {
  EXPECT_EQ(Count("fn:doc(data.xml)//n[./missing = 7]"), 0u);
  EXPECT_EQ(Count("fn:doc(data.xml)//empty[./v = 7]"), 0u);
}

TEST_F(EvaluatorExtendedTest, ExistentialOverMultipleValues) {
  // The comparison is existential: ANY (v, literal) pair may match.
  auto doc = xml::ParseXml("<m><k>1</k><k>2</k></m>", 2);
  ASSERT_TRUE(doc.ok());
  db_.AddDocument("m.xml", *doc);
  EXPECT_EQ(Count("fn:doc(m.xml)/m[./k = 2]"), 1u);
  EXPECT_EQ(Count("fn:doc(m.xml)/m[./k = 3]"), 0u);
}

TEST_F(EvaluatorExtendedTest, IfConditionUsesEffectiveBoolean) {
  // Non-empty node sequence = true; empty = false.
  auto result = Run(
      "for $n in fn:doc(data.xml)/data "
      "return if $n/empty then 'has-empty' else 'no-empty'");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(AtomicValue((*result)[0]), "has-empty");
  result = Run(
      "for $n in fn:doc(data.xml)/data "
      "return if $n/zzz then 'yes' else 'no'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(AtomicValue((*result)[0]), "no");
}

TEST_F(EvaluatorExtendedTest, MultiClauseCartesianProduct) {
  EXPECT_EQ(Count("for $a in fn:doc(data.xml)//n "
                  "for $b in fn:doc(data.xml)//s return <p></p>"),
            6u);  // 3 n * 2 s
}

TEST_F(EvaluatorExtendedTest, VariableShadowingInNestedFlwor) {
  auto result = Run(
      "for $x in fn:doc(data.xml)//s "
      "return <o>{for $x in fn:doc(data.xml)//n return $x/v}</o>");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  const NodeHandle* h = std::get_if<NodeHandle>(&(*result)[0]);
  ASSERT_NE(h, nullptr);
  // Inner $x shadows outer: three v copies inside each <o>.
  EXPECT_EQ(h->node().children.size(), 3u);
}

TEST_F(EvaluatorExtendedTest, FunctionWithTwoParameters) {
  auto result = Run(
      "declare function pair($a, $b) { <pair>{$a/v},{$b/v}</pair> } "
      "pair(fn:doc(data.xml)//s, fn:doc(data.xml)//n)");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  const NodeHandle* h = std::get_if<NodeHandle>(&(*result)[0]);
  // Both argument sequences' v children are copied: 2 + 3.
  EXPECT_EQ(h->node().children.size(), 5u);
}

TEST_F(EvaluatorExtendedTest, EmptySequenceLiteral) {
  EXPECT_EQ(Count("()"), 0u);
  EXPECT_EQ(Count("for $n in fn:doc(data.xml)//n "
                  "return if $n/v > 50 then $n else ()"),
            1u);
}

TEST_F(EvaluatorExtendedTest, InvariantHoistingIsInvisible) {
  // The same invariant path evaluated in two nested loops must yield the
  // same nodes (cached sequence identity is an implementation detail).
  auto result = Run(
      "for $a in fn:doc(data.xml)//n "
      "return <w>{for $b in fn:doc(data.xml)//n return $b/v}</w>");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  for (const Item& item : *result) {
    const NodeHandle* h = std::get_if<NodeHandle>(&item);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->node().children.size(), 3u);
  }
}

TEST_F(EvaluatorExtendedTest, AtomicValueFormatting) {
  EXPECT_EQ(AtomicValue(Item(7.0)), "7");
  EXPECT_EQ(AtomicValue(Item(7.5)), "7.5");
  EXPECT_EQ(AtomicValue(Item(true)), "true");
  EXPECT_EQ(AtomicValue(Item(std::string("x"))), "x");
}

TEST_F(EvaluatorExtendedTest, ConstructedElementsAreIndependentCopies) {
  auto result = Run(
      "for $n in fn:doc(data.xml)//n return <c>{$n/v}</c>");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  // Each constructed <c> is a distinct node in the arena.
  const NodeHandle* a = std::get_if<NodeHandle>(&(*result)[0]);
  const NodeHandle* b = std::get_if<NodeHandle>(&(*result)[1]);
  EXPECT_NE(a->index, b->index);
  EXPECT_EQ(a->doc, b->doc);  // same arena document
}

}  // namespace
}  // namespace quickview::xquery
