// Stress shapes for the PDT merge pass that the randomized property test
// reaches only by luck: highly skewed list lengths (exercising the
// at-most-two-ids pull rule), long runs of elements failing mandatory
// constraints (exercising cache discard), and late-arriving ancestors.
#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "pdt/generate_pdt.h"
#include "qpt/generate_qpt.h"
#include "xml/dom.h"
#include "xml/parser.h"
#include "xquery/parser.h"

namespace quickview::pdt {
namespace {

std::vector<qpt::Qpt> QptsFor(const std::string& view) {
  auto query = xquery::ParseQuery(view);
  EXPECT_TRUE(query.ok()) << query.status();
  auto qpts = qpt::GenerateQpts(&*query);
  EXPECT_TRUE(qpts.ok()) << qpts.status();
  return std::move(*qpts);
}

TEST(PdtStressTest, LongRunsOfMandatoryFailures) {
  // 1000 items, only every 50th has the mandatory key: the CT must stay
  // tiny while churning through the failures.
  xml::Document doc(1);
  xml::NodeIndex root = doc.CreateRoot("list");
  int expected = 0;
  for (int i = 0; i < 1000; ++i) {
    xml::NodeIndex item = doc.AddChild(root, "item");
    doc.node(doc.AddChild(item, "note")).text = "n" + std::to_string(i);
    if (i % 50 == 0) {
      doc.node(doc.AddChild(item, "key")).text = std::to_string(i);
      ++expected;
    }
  }
  xml::Database db;
  auto shared = std::make_shared<xml::Document>(std::move(doc));
  db.AddDocument("list.xml", shared);
  auto indexes = index::BuildDatabaseIndexes(db);
  auto qpts = QptsFor(
      "for $i in fn:doc(list.xml)/list//item where $i/key "
      "return <r>{$i/note}</r>");
  PdtBuildStats stats;
  auto pdt = GeneratePdt(qpts[0], *indexes->Get("list.xml"), {}, &stats);
  ASSERT_TRUE(pdt.ok()) << pdt.status();
  const xml::Document& out = **pdt;
  int items = 0;
  for (xml::NodeIndex i = 0; i < out.size(); ++i) {
    if (out.node(i).tag == "item") ++items;
  }
  EXPECT_EQ(items, expected);
  // Bounded working set: far below the element count (the algorithm's
  // memory claim — the CT holds at most a couple of ids per list).
  EXPECT_LT(stats.peak_ct_nodes, 50u);
}

TEST(PdtStressTest, SkewedListLengths) {
  // One list with 500 entries, the mandatory one with 2: the pull rule
  // must drain the long list without accumulating it in the CT.
  xml::Document doc(1);
  xml::NodeIndex root = doc.CreateRoot("r");
  for (int i = 0; i < 500; ++i) {
    xml::NodeIndex e = doc.AddChild(root, "e");
    doc.node(doc.AddChild(e, "text")).text = "t" + std::to_string(i);
    if (i == 100 || i == 400) {
      doc.node(doc.AddChild(e, "flag")).text = "y";
    }
  }
  xml::Database db;
  db.AddDocument("r.xml", std::make_shared<xml::Document>(std::move(doc)));
  auto indexes = index::BuildDatabaseIndexes(db);
  auto qpts =
      QptsFor("for $e in fn:doc(r.xml)/r//e where $e/flag return $e");
  PdtBuildStats stats;
  auto pdt = GeneratePdt(qpts[0], *indexes->Get("r.xml"), {}, &stats);
  ASSERT_TRUE(pdt.ok()) << pdt.status();
  int kept = 0;
  for (xml::NodeIndex i = 0; i < (*pdt)->size(); ++i) {
    if ((*pdt)->node(i).tag == "e") ++kept;
  }
  EXPECT_EQ(kept, 2);
  EXPECT_LT(stats.peak_ct_nodes, 20u);
}

TEST(PdtStressTest, DeepDescendantChains) {
  // //a//a//a over a 12-deep all-'a' spine.
  std::string text;
  for (int i = 0; i < 12; ++i) text += "<a>";
  text += "<leaf>x</leaf>";
  for (int i = 0; i < 12; ++i) text += "</a>";
  auto doc = xml::ParseXml(text, 1);
  ASSERT_TRUE(doc.ok());
  xml::Database db;
  db.AddDocument("deep.xml", *doc);
  auto indexes = index::BuildDatabaseIndexes(db);
  auto qpts = QptsFor("for $x in fn:doc(deep.xml)//a//a//a return $x");
  auto pdt = GeneratePdt(qpts[0], *indexes->Get("deep.xml"), {}, nullptr);
  ASSERT_TRUE(pdt.ok()) << pdt.status();
  // Every 'a' except the top two can be the third step's match; all the
  // spine survives as ancestors. All 12 spine nodes are in the PDT.
  int a_count = 0;
  for (xml::NodeIndex i = 0; i < (*pdt)->size(); ++i) {
    if ((*pdt)->node(i).tag == "a") ++a_count;
  }
  EXPECT_EQ(a_count, 12);
}

TEST(PdtStressTest, WideFanoutManyLists) {
  // A QPT with 6 probed leaves under one parent.
  xml::Document doc(1);
  xml::NodeIndex root = doc.CreateRoot("recs");
  for (int i = 0; i < 50; ++i) {
    xml::NodeIndex rec = doc.AddChild(root, "rec");
    for (const char* tag : {"f1", "f2", "f3", "f4", "f5", "f6"}) {
      // Drop one field per record, round-robin.
      if (std::string(tag) == "f" + std::to_string(1 + i % 6)) continue;
      doc.node(doc.AddChild(rec, tag)).text = tag;
    }
  }
  xml::Database db;
  db.AddDocument("w.xml",
                 std::make_shared<xml::Document>(std::move(doc)));
  auto indexes = index::BuildDatabaseIndexes(db);
  // f1..f3 mandatory (where-existence), f4..f6 content.
  auto qpts = QptsFor(
      "for $r in fn:doc(w.xml)/recs//rec[./f1][./f2][./f3] "
      "return <o>{$r/f4}, {$r/f5}, {$r/f6}</o>");
  auto pdt = GeneratePdt(qpts[0], *indexes->Get("w.xml"), {}, nullptr);
  ASSERT_TRUE(pdt.ok()) << pdt.status();
  int recs = 0;
  for (xml::NodeIndex i = 0; i < (*pdt)->size(); ++i) {
    if ((*pdt)->node(i).tag == "rec") ++recs;
  }
  // Records missing f1, f2 or f3 are pruned: 50 - 3*ceil(50/6 splits).
  int expected = 0;
  for (int i = 0; i < 50; ++i) {
    int dropped = 1 + i % 6;
    if (dropped > 3) ++expected;  // only f4..f6 missing is survivable
  }
  EXPECT_EQ(recs, expected);
}

TEST(PdtStressTest, TwoDocumentJoinViewLists) {
  // Both QPTs of a join view generate well-formed PDTs independently.
  auto left = xml::ParseXml("<ls><l><k>1</k></l><l><k>2</k></l></ls>", 1);
  auto right = xml::ParseXml(
      "<rs><r><k>2</k><p>x</p></r><r><p>orphan</p></r></rs>", 2);
  ASSERT_TRUE(left.ok() && right.ok());
  xml::Database db;
  db.AddDocument("l.xml", *left);
  db.AddDocument("r.xml", *right);
  auto indexes = index::BuildDatabaseIndexes(db);
  auto qpts = QptsFor(
      "for $l in fn:doc(l.xml)/ls//l return <m>{$l/k},"
      "{for $r in fn:doc(r.xml)/rs//r where $r/k = $l/k return $r/p}</m>");
  ASSERT_EQ(qpts.size(), 2u);
  for (const qpt::Qpt& q : qpts) {
    auto indexes_for =
        q.source_doc == "l.xml" ? indexes->Get("l.xml") : indexes->Get("r.xml");
    auto pdt = GeneratePdt(q, *indexes_for, {"x"}, nullptr);
    ASSERT_TRUE(pdt.ok()) << pdt.status();
    EXPECT_TRUE((*pdt)->has_root());
  }
}

}  // namespace
}  // namespace quickview::pdt
