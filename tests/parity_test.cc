// Theorem 4.1 as a test suite: keyword search over the virtual view via
// the Efficient engine (indices + PDTs, deferred materialization) must
// produce exactly the same results — same XML, same tf values, same byte
// lengths, same scores, same rank order — as the Baseline engine that
// materializes the entire view first. The GTP baseline must also agree.
#include <gtest/gtest.h>

#include "baseline/gtp_termjoin.h"
#include "xml/parser.h"
#include "baseline/naive_engine.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "storage/document_store.h"
#include "workload/bookrev_generator.h"
#include "workload/inex_generator.h"
#include "workload/view_factory.h"

namespace quickview {
namespace {

void ExpectSameResponses(const engine::SearchResponse& a,
                         const engine::SearchResponse& b,
                         const std::string& label) {
  EXPECT_EQ(a.stats.view_results, b.stats.view_results) << label;
  EXPECT_EQ(a.stats.matching_results, b.stats.matching_results) << label;
  ASSERT_EQ(a.hits.size(), b.hits.size()) << label;
  for (size_t i = 0; i < a.hits.size(); ++i) {
    SCOPED_TRACE(label + " hit " + std::to_string(i));
    EXPECT_EQ(a.hits[i].tf, b.hits[i].tf);
    EXPECT_EQ(a.hits[i].byte_length, b.hits[i].byte_length);
    EXPECT_DOUBLE_EQ(a.hits[i].score, b.hits[i].score);
    EXPECT_EQ(a.hits[i].xml, b.hits[i].xml);
  }
}

class ParityFixture {
 public:
  explicit ParityFixture(std::shared_ptr<xml::Database> db)
      : db_(std::move(db)),
        indexes_(index::BuildDatabaseIndexes(*db_)),
        store_(*db_),
        efficient_(db_.get(), indexes_.get(), &store_),
        naive_(db_.get()),
        gtp_(db_.get(), indexes_.get(), &store_) {}

  void Check(const std::string& view,
             const std::vector<std::string>& keywords, bool conjunctive,
             size_t top_k) {
    engine::SearchOptions options;
    options.top_k = top_k;
    options.conjunctive = conjunctive;
    engine::SearchRequest request;
    request.view = view;
    request.keywords = keywords;
    request.options = options;
    auto eff = efficient_.Execute(request);
    ASSERT_TRUE(eff.ok()) << eff.status();
    auto naive = naive_.SearchView(view, keywords, options);
    ASSERT_TRUE(naive.ok()) << naive.status();
    ExpectSameResponses(*eff, *naive, "efficient-vs-naive");
    auto gtp = gtp_.SearchView(view, keywords, options);
    ASSERT_TRUE(gtp.ok()) << gtp.status();
    ExpectSameResponses(*gtp, *naive, "gtp-vs-naive");
  }

 private:
  std::shared_ptr<xml::Database> db_;
  std::unique_ptr<index::DatabaseIndexes> indexes_;
  storage::DocumentStore store_;
  engine::ViewSearchEngine efficient_;
  baseline::NaiveEngine naive_;
  baseline::GtpTermJoinEngine gtp_;
};

TEST(ParityTest, PaperFig2ViewConjunctive) {
  ParityFixture fixture(
      workload::GenerateBookRevDatabase(workload::BookRevOptions{}));
  fixture.Check(workload::BookRevView(), {"xml", "search"}, true, 10);
}

TEST(ParityTest, PaperFig2ViewDisjunctive) {
  ParityFixture fixture(
      workload::GenerateBookRevDatabase(workload::BookRevOptions{}));
  fixture.Check(workload::BookRevView(), {"xml", "database"}, false, 10);
}

TEST(ParityTest, SingleAndManyKeywords) {
  ParityFixture fixture(
      workload::GenerateBookRevDatabase(workload::BookRevOptions{}));
  fixture.Check(workload::BookRevView(), {"search"}, true, 5);
  fixture.Check(workload::BookRevView(),
                {"xml", "search", "web", "database"}, false, 20);
}

TEST(ParityTest, SelectionOnlyView) {
  ParityFixture fixture(
      workload::GenerateBookRevDatabase(workload::BookRevOptions{}));
  fixture.Check(
      "for $b in fn:doc(books.xml)/books//book where $b/year > 2000 "
      "return <hit>{$b/title}</hit>",
      {"xml"}, true, 10);
}

TEST(ParityTest, ReturnWholeElement) {
  ParityFixture fixture(
      workload::GenerateBookRevDatabase(workload::BookRevOptions{}));
  fixture.Check(
      "for $b in fn:doc(books.xml)/books//book[./year > 1998] return $b",
      {"xml", "practice"}, true, 10);
}

TEST(ParityTest, KeywordInConstructedTagName) {
  // "pub" appears only as a constructed tag: both engines must count it.
  ParityFixture fixture(
      workload::GenerateBookRevDatabase(workload::BookRevOptions{}));
  fixture.Check(
      "for $b in fn:doc(books.xml)/books//book "
      "return <pub>{$b/title}</pub>",
      {"pub", "xml"}, true, 10);
}

TEST(ParityTest, InexDefaultView) {
  workload::InexOptions opts;
  opts.target_bytes = 80 * 1024;
  ParityFixture fixture(workload::GenerateInexDatabase(opts));
  workload::ViewSpec spec;
  fixture.Check(workload::BuildInexView(spec),
                workload::KeywordsForTier(workload::KeywordTier::kMedium),
                true, 10);
}

TEST(ParityTest, InexAllJoinCounts) {
  workload::InexOptions opts;
  opts.target_bytes = 40 * 1024;
  ParityFixture fixture(workload::GenerateInexDatabase(opts));
  for (int joins = 0; joins <= 4; ++joins) {
    SCOPED_TRACE("joins=" + std::to_string(joins));
    workload::ViewSpec spec;
    spec.num_joins = joins;
    fixture.Check(workload::BuildInexView(spec), {"ieee", "computing"},
                  true, 10);
  }
}

TEST(ParityTest, InexAllNestingLevels) {
  workload::InexOptions opts;
  opts.target_bytes = 40 * 1024;
  ParityFixture fixture(workload::GenerateInexDatabase(opts));
  for (int nesting = 1; nesting <= 4; ++nesting) {
    SCOPED_TRACE("nesting=" + std::to_string(nesting));
    workload::ViewSpec spec;
    spec.nesting_level = nesting;
    fixture.Check(workload::BuildInexView(spec), {"thomas", "control"},
                  true, 10);
  }
}

TEST(ParityTest, LetBoundContentWithMissingChild) {
  // Regression: a let-bound path must not prune elements lacking the
  // child — `let $t in $b/title` still yields a result for title-less
  // books (unlike a `for`), so the QPT edge must be optional.
  auto books = xml::ParseXml(
      "<books><book><isbn>1</isbn><title>xml search</title></book>"
      "<book><isbn>2</isbn></book></books>",
      1);
  ASSERT_TRUE(books.ok());
  auto db = std::make_shared<xml::Database>();
  db->AddDocument("books.xml", *books);
  ParityFixture fixture(db);
  fixture.Check(
      "for $b in fn:doc(books.xml)/books//book "
      "let $t in $b/title return <r><got>{$t}</got>,{$b/isbn}</r>",
      {"isbn"}, true, 10);
}

TEST(ParityTest, AllSelectivityTiers) {
  workload::InexOptions opts;
  opts.target_bytes = 60 * 1024;
  ParityFixture fixture(workload::GenerateInexDatabase(opts));
  for (auto tier : {workload::KeywordTier::kLow, workload::KeywordTier::kMedium,
                    workload::KeywordTier::kHigh}) {
    workload::ViewSpec spec;
    fixture.Check(workload::BuildInexView(spec),
                  workload::KeywordsForTier(tier), true, 10);
  }
}

}  // namespace
}  // namespace quickview
