// Differential proof of the live update path: a corpus mutated through
// InsertDocument/RemoveDocument — incrementally maintained documents,
// path indexes, inverted indexes and store snapshots — must be
// indistinguishable from a corpus rebuilt from scratch. The harness
// interleaves hundreds of seeded random insert/remove/query steps on a
// bookrev-shaped corpus and, after EVERY mutation, checks
//   (a) structural index-state equality against a fresh rebuild (row for
//       row, posting for posting; Dewey ids compared modulo the root
//       component, which legitimately differs between incremental
//       assignment order and rebuild order), and
//   (b) byte-identical SearchBatch responses (hits, scores, tf vectors,
//       materialized XML, fetch accounting) through a live QueryService
//       vs a fresh engine over the rebuilt corpus — including identical
//       errors while a referenced document is absent.
// A second suite proves the packed-database delta story: a .qvpack plus
// delta side log answers queries byte-identically to an in-memory engine
// over the folded corpus, and `compact` output is byte-identical — as a
// file — to packing the final corpus directly.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/sync.h"
#include "engine/result_cursor.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "pagestore/delta_log.h"
#include "pagestore/pack.h"
#include "pagestore/packed_db.h"
#include "service/query_service.h"
#include "storage/document_store.h"
#include "storage/live_database.h"
#include "workload/bookrev_generator.h"
#include "xml/parser.h"

namespace quickview {
namespace {

// ---------------------------------------------------------------------------
// Corpus model: the ground truth the live database is diffed against.
// ---------------------------------------------------------------------------

const char* const kTerms[] = {"xml",      "search",  "web",     "database",
                              "services", "systems", "queries", "index"};

struct Book {
  int id = 0;
  std::string title;
  int year = 1990;
};

struct Review {
  int book_id = 0;
  std::string content;
};

std::string Isbn(int id) { return "isbn-" + std::to_string(1000 + id); }

std::string BooksXml(const std::vector<Book>& books) {
  std::string out = "<books>";
  for (const Book& book : books) {
    out += "<book><isbn>" + Isbn(book.id) + "</isbn><title>" + book.title +
           "</title><publisher>Morgan Kaufmann</publisher><year>" +
           std::to_string(book.year) + "</year></book>";
  }
  out += "</books>";
  return out;
}

std::string ReviewsXml(const std::vector<Review>& reviews) {
  std::string out = "<reviews>";
  for (const Review& review : reviews) {
    out += "<review><isbn>" + Isbn(review.book_id) +
           "</isbn><rate>Good</rate><content>" + review.content +
           "</content><reviewer>reviewer</reviewer></review>";
  }
  out += "</reviews>";
  return out;
}

/// The whole corpus state as (document name -> XML text): what the
/// fresh-rebuild side parses from scratch.
struct CorpusModel {
  std::vector<Book> books;
  std::vector<Review> reviews;
  bool reviews_doc_present = true;
  std::map<std::string, std::string> aux_docs;

  std::map<std::string, std::string> Documents() const {
    std::map<std::string, std::string> out = aux_docs;
    out["books.xml"] = BooksXml(books);
    if (reviews_doc_present) out["reviews.xml"] = ReviewsXml(reviews);
    return out;
  }
};

std::shared_ptr<xml::Database> BuildFromCorpus(
    const std::map<std::string, std::string>& docs) {
  auto db = std::make_shared<xml::Database>();
  uint32_t next_root = 1;
  for (const auto& [name, text] : docs) {
    auto parsed = xml::ParseXml(text, next_root++);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    db->AddDocument(name, *parsed);
  }
  return db;
}

/// A from-scratch engine over the model: the oracle every live state is
/// compared against.
struct RebuiltEngine {
  std::shared_ptr<xml::Database> db;
  std::unique_ptr<index::DatabaseIndexes> indexes;
  std::unique_ptr<storage::DocumentStore> store;
  std::unique_ptr<engine::ViewSearchEngine> engine;

  explicit RebuiltEngine(const CorpusModel& model)
      : db(BuildFromCorpus(model.Documents())),
        indexes(index::BuildDatabaseIndexes(*db)),
        store(std::make_unique<storage::DocumentStore>(*db)),
        engine(std::make_unique<engine::ViewSearchEngine>(
            db.get(), indexes.get(), store.get())) {}
};

// ---------------------------------------------------------------------------
// Structural index comparison (root Dewey component masked)
// ---------------------------------------------------------------------------

std::vector<uint32_t> TailComponents(const xml::DeweyId& id) {
  const std::vector<uint32_t>& all = id.components();
  return std::vector<uint32_t>(all.begin() + (all.empty() ? 0 : 1),
                               all.end());
}

using PathDump = std::vector<
    std::tuple<std::string, std::string, std::vector<uint32_t>, uint64_t>>;
using TermDump =
    std::vector<std::tuple<std::string, std::vector<uint32_t>, uint32_t>>;

PathDump DumpPathIndex(const index::PathIndex& paths) {
  PathDump out;
  paths.ForEachRow([&](const std::string& path, const std::string& value,
                       const std::vector<index::PathEntry>& entries) {
    for (const index::PathEntry& entry : entries) {
      out.emplace_back(path, value, TailComponents(entry.id),
                       entry.byte_length);
    }
  });
  return out;
}

TermDump DumpInvertedIndex(const index::InvertedIndex& terms) {
  TermDump out;
  terms.ForEachPosting(
      [&](const std::string& term, const xml::DeweyId& id, uint32_t tf) {
        out.emplace_back(term, TailComponents(id), tf);
      });
  return out;
}

void ExpectSameIndexState(const index::DatabaseIndexes& incremental,
                          const index::DatabaseIndexes& rebuilt,
                          const std::string& context) {
  ASSERT_EQ(incremental.all().size(), rebuilt.all().size()) << context;
  for (const auto& [name, fresh] : rebuilt.all()) {
    const index::DocumentIndexes* live = incremental.Get(name);
    ASSERT_NE(live, nullptr) << context << ": missing indexes for " << name;
    EXPECT_EQ(live->path_index.distinct_path_list(),
              fresh->path_index.distinct_path_list())
        << context << ": path dictionary diverged for " << name;
    EXPECT_EQ(DumpPathIndex(live->path_index),
              DumpPathIndex(fresh->path_index))
        << context << ": path index diverged for " << name;
    EXPECT_EQ(DumpInvertedIndex(live->inverted_index),
              DumpInvertedIndex(fresh->inverted_index))
        << context << ": inverted index diverged for " << name;
  }
}

// ---------------------------------------------------------------------------
// Response comparison
// ---------------------------------------------------------------------------

void ExpectSameResponse(const Result<engine::SearchResponse>& expected,
                        const Result<engine::SearchResponse>& actual,
                        const std::string& context) {
  ASSERT_EQ(expected.ok(), actual.ok())
      << context << ": " << expected.status().ToString() << " vs "
      << actual.status().ToString();
  if (!expected.ok()) {
    EXPECT_EQ(expected.status().code(), actual.status().code()) << context;
    EXPECT_EQ(expected.status().message(), actual.status().message())
        << context;
    return;
  }
  ASSERT_EQ(expected->hits.size(), actual->hits.size()) << context;
  for (size_t i = 0; i < expected->hits.size(); ++i) {
    EXPECT_EQ(expected->hits[i].xml, actual->hits[i].xml)
        << context << " hit " << i;
    EXPECT_EQ(expected->hits[i].score, actual->hits[i].score)
        << context << " hit " << i;
    EXPECT_EQ(expected->hits[i].tf, actual->hits[i].tf)
        << context << " hit " << i;
    EXPECT_EQ(expected->hits[i].byte_length, actual->hits[i].byte_length)
        << context << " hit " << i;
  }
  EXPECT_EQ(expected->stats.view_results, actual->stats.view_results)
      << context;
  EXPECT_EQ(expected->stats.matching_results, actual->stats.matching_results)
      << context;
  EXPECT_EQ(expected->stats.view_bytes, actual->stats.view_bytes) << context;
  EXPECT_EQ(expected->stats.store_fetches, actual->stats.store_fetches)
      << context;
  EXPECT_EQ(expected->stats.store_bytes, actual->stats.store_bytes)
      << context;
  EXPECT_EQ(expected->stats.pdt.ids_processed, actual->stats.pdt.ids_processed)
      << context;
  EXPECT_EQ(expected->stats.pdt.nodes_emitted, actual->stats.pdt.nodes_emitted)
      << context;
  EXPECT_EQ(expected->stats.pdt.index_probes, actual->stats.pdt.index_probes)
      << context;
  EXPECT_EQ(expected->stats.pdt.pdt_bytes, actual->stats.pdt.pdt_bytes)
      << context;
}

const std::vector<std::vector<std::string>>& QueryKeywordSets() {
  static const auto* kSets = new std::vector<std::vector<std::string>>{
      {"xml", "search"}, {"database"}, {"web", "xml"}, {"queries"}};
  return *kSets;
}

std::vector<service::BatchQuery> MakeQueryBatch(const std::string& view) {
  std::vector<service::BatchQuery> batch;
  for (size_t i = 0; i < QueryKeywordSets().size(); ++i) {
    service::BatchQuery query;
    query.view = view;
    query.keywords = QueryKeywordSets()[i];
    query.options.top_k = 5;
    query.options.conjunctive = i % 2 == 0;
    batch.push_back(std::move(query));
  }
  return batch;
}

std::string TestPath(const std::string& leaf) {
  return (std::filesystem::path(::testing::TempDir()) / leaf).string();
}

// ---------------------------------------------------------------------------
// The randomized differential harness
// ---------------------------------------------------------------------------

constexpr int kMutationSteps = 240;

TEST(UpdateDifferentialTest, RandomizedUpdatesMatchFreshRebuild) {
  std::mt19937_64 rng(20260727);
  auto pick_term = [&rng] { return kTerms[rng() % 8]; };

  CorpusModel model;
  for (int i = 0; i < 8; ++i) {
    model.books.push_back(Book{i,
                               std::string(pick_term()) + " " + pick_term() +
                                   " in practice",
                               1990 + static_cast<int>(rng() % 16)});
    model.reviews.push_back(
        Review{i, std::string("about ") + pick_term() + " and " +
                      pick_term() + ", easy to read"});
  }
  int next_book_id = 8;
  int next_aux_id = 0;

  storage::LiveDatabase live;
  // Every mutation step below goes through the durable WAL path: the
  // service routes InsertDocument/RemoveDocument through
  // CommitInsert/CommitRemove, which group-commit to this log before
  // applying. The cold replay at the end proves the log alone rebuilds
  // the final corpus.
  const std::string wal_path = TestPath("update_differential.wal");
  std::filesystem::remove(wal_path);
  ASSERT_TRUE(live.OpenWal(wal_path).ok());
  service::QueryServiceOptions options;
  options.threads = 2;
  service::QueryService service(&live, options);
  for (const auto& [name, text] : model.Documents()) {
    ASSERT_TRUE(service.InsertDocument(name, text).ok()) << name;
  }
  ASSERT_TRUE(
      service.RegisterView("bookrev", workload::BookRevView()).ok());
  const std::string books_only_view =
      "for $b in fn:doc(books.xml)/books//book return $b";
  ASSERT_TRUE(service.RegisterView("allbooks", books_only_view).ok());

  int mutations = 0;
  for (int step = 0; step < kMutationSteps; ++step) {
    // --- one random mutation, applied to the model and the live db ------
    const std::string context = "step " + std::to_string(step);
    switch (rng() % 6) {
      case 0: {  // grow books.xml (replacement under the same name)
        model.books.push_back(Book{next_book_id++,
                                   std::string(pick_term()) + " " +
                                       pick_term() + " in practice",
                                   1990 + static_cast<int>(rng() % 16)});
        ASSERT_TRUE(
            service.InsertDocument("books.xml", BooksXml(model.books)).ok())
            << context;
        break;
      }
      case 1: {  // add (or resurrect) a review
        int target = model.books.empty()
                         ? 0
                         : model.books[rng() % model.books.size()].id;
        model.reviews.push_back(
            Review{target, std::string("about ") + pick_term() + " and " +
                               pick_term() + ", easy to read"});
        model.reviews_doc_present = true;
        ASSERT_TRUE(service
                        .InsertDocument("reviews.xml",
                                        ReviewsXml(model.reviews))
                        .ok())
            << context;
        break;
      }
      case 2: {  // shrink books.xml
        if (model.books.size() > 1) {
          model.books.erase(model.books.begin() +
                            static_cast<long>(rng() % model.books.size()));
        }
        ASSERT_TRUE(
            service.InsertDocument("books.xml", BooksXml(model.books)).ok())
            << context;
        break;
      }
      case 3: {  // insert or replace an unrelated aux document
        std::string name =
            "aux" + std::to_string(rng() % 4) + ".xml";
        std::string text = std::string("<notes><note>") + pick_term() +
                           " scratch " + std::to_string(next_aux_id++) +
                           "</note></notes>";
        model.aux_docs[name] = text;
        ASSERT_TRUE(service.InsertDocument(name, text).ok()) << context;
        break;
      }
      case 4: {  // remove an aux document (NotFound when none is live)
        if (model.aux_docs.empty()) {
          EXPECT_EQ(service.RemoveDocument("aux-gone.xml").code(),
                    StatusCode::kNotFound)
              << context;
          continue;  // nothing changed; skip the (identical) re-check
        }
        auto it = model.aux_docs.begin();
        std::advance(it, static_cast<long>(rng() % model.aux_docs.size()));
        std::string name = it->first;
        model.aux_docs.erase(it);
        ASSERT_TRUE(service.RemoveDocument(name).ok()) << context;
        break;
      }
      case 5: {  // drop reviews.xml entirely: bookrev queries must fail
                 // identically on both sides until a review re-adds it
        if (!model.reviews_doc_present) continue;
        model.reviews_doc_present = false;
        model.reviews.clear();
        ASSERT_TRUE(service.RemoveDocument("reviews.xml").ok()) << context;
        break;
      }
    }
    ++mutations;

    // --- differential check against a from-scratch rebuild --------------
    RebuiltEngine fresh(model);
    {
      // Direct index access outside the service: hold the corpus lock
      // shared, as any reader of LiveDatabase surfaces must.
      qv::ReaderLock live_lock(live.mu());
      ExpectSameIndexState(*live.indexes(), *fresh.indexes, context);
    }

    std::vector<service::BatchQuery> batch = MakeQueryBatch("bookrev");
    std::vector<Result<engine::SearchResponse>> responses =
        service.SearchBatch(batch);
    ASSERT_EQ(responses.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      engine::SearchRequest oracle;
      oracle.view = workload::BookRevView();
      oracle.keywords = batch[i].keywords;
      oracle.options = batch[i].options;
      Result<engine::SearchResponse> expected = fresh.engine->Execute(oracle);
      ExpectSameResponse(expected, responses[i],
                         context + " query " + std::to_string(i));
    }
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "differential divergence at " << context;
    }
  }
  EXPECT_GE(mutations, 200);
  EXPECT_GE(service.stats().documents_inserted, 100u);
  EXPECT_GE(service.stats().documents_removed, 10u);
  // Every acknowledged mutation is in the WAL, fdatasync'd before its
  // ack. A cold replay must rebuild exactly the final corpus.
  EXPECT_GE(live.wal()->appended_records(),
            service.stats().documents_inserted);
  storage::LiveDatabase recovered;
  ASSERT_TRUE(recovered.OpenWal(wal_path).ok());
  RebuiltEngine final_oracle(model);
  {
    qv::ReaderLock recovered_lock(recovered.mu());
    ExpectSameIndexState(*recovered.indexes(), *final_oracle.indexes,
                         "cold WAL replay");
  }
}

TEST(UpdateDifferentialTest, MutationInvalidatesOnlyReferencingViews) {
  storage::LiveDatabase live;
  service::QueryServiceOptions options;
  options.threads = 1;
  service::QueryService service(&live, options);
  CorpusModel model;
  model.books.push_back(Book{0, "xml search in practice", 2000});
  model.reviews.push_back(Review{0, "about xml and search, easy to read"});
  for (const auto& [name, text] : model.Documents()) {
    ASSERT_TRUE(service.InsertDocument(name, text).ok());
  }
  ASSERT_TRUE(service.RegisterView("bookrev", workload::BookRevView()).ok());
  ASSERT_TRUE(service
                  .RegisterView("allbooks",
                                "for $b in fn:doc(books.xml)/books//book "
                                "return $b")
                  .ok());
  service::BatchQuery books_query{"allbooks", {"xml"},
                                  engine::SearchOptions{}};
  service::BatchQuery rev_query{"bookrev", {"xml"}, engine::SearchOptions{}};
  ASSERT_TRUE(service.SearchOne(books_query).ok());
  ASSERT_TRUE(service.SearchOne(rev_query).ok());
  uint64_t misses = service.stats().cache.misses;

  // reviews.xml is not read by "allbooks": its cached PDTs must survive
  // the mutation, while "bookrev"'s are invalidated.
  model.reviews.push_back(Review{0, "about web and database, easy to read"});
  ASSERT_TRUE(
      service.InsertDocument("reviews.xml", ReviewsXml(model.reviews)).ok());
  ASSERT_TRUE(service.SearchOne(books_query).ok());
  EXPECT_EQ(service.stats().cache.misses, misses);  // hit: still valid
  ASSERT_TRUE(service.SearchOne(rev_query).ok());
  EXPECT_EQ(service.stats().cache.misses, misses + 1);  // rebuilt

  // And a books.xml mutation invalidates both views.
  model.books.push_back(Book{1, "database systems in practice", 1999});
  ASSERT_TRUE(
      service.InsertDocument("books.xml", BooksXml(model.books)).ok());
  ASSERT_TRUE(service.SearchOne(books_query).ok());
  ASSERT_TRUE(service.SearchOne(rev_query).ok());
  EXPECT_EQ(service.stats().cache.misses, misses + 3);
}

TEST(UpdateDifferentialTest, CursorOpenedBeforeUpdateDrainsItsSnapshot) {
  storage::LiveDatabase live;
  service::QueryService service(&live, service::QueryServiceOptions{});
  CorpusModel model;
  for (int i = 0; i < 6; ++i) {
    model.books.push_back(Book{i, "xml search in practice", 2000});
    model.reviews.push_back(Review{i, "about xml and search, easy to read"});
  }
  for (const auto& [name, text] : model.Documents()) {
    ASSERT_TRUE(service.InsertDocument(name, text).ok());
  }
  ASSERT_TRUE(service.RegisterView("bookrev", workload::BookRevView()).ok());

  service::BatchQuery query{"bookrev", {"xml", "search"},
                            engine::SearchOptions{}};
  query.options.top_k = 100;
  // Capture the pre-update truth, then open a second cursor and update
  // under it: the half-drained cursor must keep materializing the old
  // corpus (its store-snapshot lease), even though the documents it
  // reads were replaced and removed from the live database.
  auto expected = service.SearchOne(query);
  ASSERT_TRUE(expected.ok());
  ASSERT_GE(expected->hits.size(), 4u);

  auto cursor = service.OpenSearch(query);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  auto first = (*cursor)->FetchNext(2);
  ASSERT_TRUE(first.ok());

  ASSERT_TRUE(service.RemoveDocument("reviews.xml").ok());
  model.books.clear();
  model.books.push_back(Book{99, "systems queries in practice", 1991});
  ASSERT_TRUE(
      service.InsertDocument("books.xml", BooksXml(model.books)).ok());

  auto rest = (*cursor)->FetchNext((*cursor)->pending());
  ASSERT_TRUE(rest.ok()) << rest.status().ToString();
  std::vector<engine::SearchHit> drained = std::move(*first);
  for (engine::SearchHit& hit : *rest) drained.push_back(std::move(hit));
  ASSERT_EQ(drained.size(), expected->hits.size());
  for (size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i].xml, expected->hits[i].xml) << "hit " << i;
    EXPECT_EQ(drained[i].score, expected->hits[i].score) << "hit " << i;
  }

  // A cursor opened now sees the new corpus: reviews.xml is gone.
  auto after = service.SearchOne(query);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Packed database: delta overlay + compaction parity
// ---------------------------------------------------------------------------

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(UpdateDeltaLogTest, OverlayAndCompactMatchDirectPack) {
  std::mt19937_64 rng(4242);
  auto pick_term = [&rng] { return kTerms[rng() % 8]; };

  CorpusModel model;
  for (int i = 0; i < 10; ++i) {
    model.books.push_back(Book{i,
                               std::string(pick_term()) + " " + pick_term() +
                                   " in practice",
                               1990 + static_cast<int>(rng() % 16)});
    model.reviews.push_back(
        Review{i, std::string("about ") + pick_term() + " and " +
                      pick_term() + ", easy to read"});
  }

  // Pack the base corpus.
  const std::string base_pack = TestPath("update_delta_base.qvpack");
  std::filesystem::remove(base_pack);
  std::filesystem::remove(pagestore::DeltaLogPath(base_pack));
  {
    std::shared_ptr<xml::Database> db = BuildFromCorpus(model.Documents());
    auto indexes = index::BuildDatabaseIndexes(*db);
    ASSERT_TRUE(pagestore::PackDatabase(*db, *indexes, base_pack).ok());
  }

  // Mutate through the delta log: replace books.xml and reviews.xml,
  // insert aux documents, tombstone one of them again.
  int next_book_id = 10;
  for (int step = 0; step < 12; ++step) {
    switch (rng() % 3) {
      case 0:
        model.books.push_back(Book{next_book_id++,
                                   std::string(pick_term()) + " " +
                                       pick_term() + " in practice",
                                   1990 + static_cast<int>(rng() % 16)});
        ASSERT_TRUE(pagestore::PackAppend(base_pack, "books.xml",
                                          BooksXml(model.books))
                        .ok());
        break;
      case 1:
        model.reviews.push_back(
            Review{static_cast<int>(rng() % 10),
                   std::string("about ") + pick_term() + " and " +
                       pick_term() + ", easy to read"});
        ASSERT_TRUE(pagestore::PackAppend(base_pack, "reviews.xml",
                                          ReviewsXml(model.reviews))
                        .ok());
        break;
      case 2: {
        std::string name = "aux" + std::to_string(rng() % 3) + ".xml";
        if (model.aux_docs.count(name) != 0 && rng() % 2 == 0) {
          model.aux_docs.erase(name);
          ASSERT_TRUE(pagestore::PackTombstone(base_pack, name).ok());
        } else {
          std::string text = std::string("<notes><note>") + pick_term() +
                             " scratch</note></notes>";
          model.aux_docs[name] = text;
          ASSERT_TRUE(pagestore::PackAppend(base_pack, name, text).ok());
        }
        break;
      }
    }
  }

  // (1) The overlaid pack answers queries byte-identically to an
  // in-memory engine over the folded corpus.
  auto packed = pagestore::PackedDb::Open(base_pack);
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  EXPECT_GE((*packed)->delta_stats().inserts, 1u);
  auto packed_store =
      std::make_unique<storage::DocumentStore>(*packed);
  service::QueryService packed_service(nullptr, packed.value().get(),
                                       packed_store.get());
  ASSERT_TRUE(
      packed_service.RegisterView("bookrev", workload::BookRevView()).ok());

  RebuiltEngine fresh(model);
  std::vector<service::BatchQuery> batch = MakeQueryBatch("bookrev");
  std::vector<Result<engine::SearchResponse>> responses =
      packed_service.SearchBatch(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    engine::SearchRequest oracle;
    oracle.view = workload::BookRevView();
    oracle.keywords = batch[i].keywords;
    oracle.options = batch[i].options;
    Result<engine::SearchResponse> expected = fresh.engine->Execute(oracle);
    // pages_read/buffer_hits legitimately differ (the packed side reads
    // disk); everything ExpectSameResponse checks must not.
    ExpectSameResponse(expected, responses[i],
                       "delta overlay query " + std::to_string(i));
  }

  // (2) compact output == a direct pack of the final corpus, byte for
  // byte.
  const std::string compacted = TestPath("update_delta_compacted.qvpack");
  const std::string direct = TestPath("update_delta_direct.qvpack");
  std::filesystem::remove(compacted);
  std::filesystem::remove(direct);
  ASSERT_TRUE(pagestore::CompactPack(base_pack, compacted).ok());
  {
    std::shared_ptr<xml::Database> db = BuildFromCorpus(model.Documents());
    auto indexes = index::BuildDatabaseIndexes(*db);
    ASSERT_TRUE(pagestore::PackDatabase(*db, *indexes, direct).ok());
  }
  EXPECT_EQ(ReadFileBytes(compacted), ReadFileBytes(direct))
      << "compacted pack must be byte-identical to a direct pack";

  // (3) Reopening the compacted pack (no delta log) serves the same
  // responses again.
  auto reopened = pagestore::PackedDb::Open(compacted);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->delta_stats().inserts, 0u);
  auto reopened_store =
      std::make_unique<storage::DocumentStore>(*reopened);
  service::QueryService reopened_service(nullptr, reopened.value().get(),
                                         reopened_store.get());
  ASSERT_TRUE(
      reopened_service.RegisterView("bookrev", workload::BookRevView())
          .ok());
  std::vector<Result<engine::SearchResponse>> reopened_responses =
      reopened_service.SearchBatch(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    engine::SearchRequest oracle;
    oracle.view = workload::BookRevView();
    oracle.keywords = batch[i].keywords;
    oracle.options = batch[i].options;
    Result<engine::SearchResponse> expected = fresh.engine->Execute(oracle);
    ExpectSameResponse(expected, reopened_responses[i],
                       "compacted query " + std::to_string(i));
  }
}

TEST(UpdateDeltaLogTest, MidLogCorruptionFailsOpenLoudly) {
  CorpusModel model;
  model.books.push_back(Book{0, "xml search in practice", 2000});
  const std::string pack = TestPath("update_delta_corrupt.qvpack");
  std::filesystem::remove(pack);
  std::filesystem::remove(pagestore::DeltaLogPath(pack));
  {
    std::shared_ptr<xml::Database> db = BuildFromCorpus(model.Documents());
    auto indexes = index::BuildDatabaseIndexes(*db);
    ASSERT_TRUE(pagestore::PackDatabase(*db, *indexes, pack).ok());
  }
  ASSERT_TRUE(pagestore::PackAppend(pack, "aux.xml",
                                    "<notes><note>x</note></notes>")
                  .ok());
  ASSERT_TRUE(pagestore::PackAppend(pack, "aux2.xml",
                                    "<notes><note>y</note></notes>")
                  .ok());
  // Flip a byte in the FIRST record's payload (offset 20 = its first
  // payload byte, after 8 magic + 12 frame header). Corruption with
  // bytes following is never a torn tail: open must refuse, loudly,
  // rather than silently drop an acknowledged commit and its successors.
  {
    std::fstream log(pagestore::DeltaLogPath(pack),
                     std::ios::binary | std::ios::in | std::ios::out);
    log.seekp(20, std::ios::beg);
    log.put('Z');
  }
  auto opened = pagestore::PackedDb::Open(pack);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kParseError);

  // An append rejected at the boundary leaves the log unchanged.
  EXPECT_EQ(pagestore::PackAppend(pack, "bad.xml", "<unclosed>").code(),
            StatusCode::kParseError);
}

TEST(UpdateDeltaLogTest, CorruptFinalRecordRecoversCommittedPrefix) {
  CorpusModel model;
  model.books.push_back(Book{0, "xml search in practice", 2000});
  const std::string pack = TestPath("update_delta_tail.qvpack");
  std::filesystem::remove(pack);
  std::filesystem::remove(pagestore::DeltaLogPath(pack));
  {
    std::shared_ptr<xml::Database> db = BuildFromCorpus(model.Documents());
    auto indexes = index::BuildDatabaseIndexes(*db);
    ASSERT_TRUE(pagestore::PackDatabase(*db, *indexes, pack).ok());
  }
  ASSERT_TRUE(pagestore::PackAppend(pack, "aux.xml",
                                    "<notes><note>x</note></notes>")
                  .ok());
  ASSERT_TRUE(pagestore::PackAppend(pack, "aux2.xml",
                                    "<notes><note>y</note></notes>")
                  .ok());
  // Damage the FINAL record (flip its last byte — part of the frame
  // checksum). With nothing after it this is indistinguishable from a
  // torn append: open recovers the committed prefix instead of bricking
  // the pack.
  {
    auto size = std::filesystem::file_size(pagestore::DeltaLogPath(pack));
    std::fstream log(pagestore::DeltaLogPath(pack),
                     std::ios::binary | std::ios::in | std::ios::out);
    log.seekg(static_cast<std::streamoff>(size) - 1, std::ios::beg);
    char last = static_cast<char>(log.get());
    log.seekp(static_cast<std::streamoff>(size) - 1, std::ios::beg);
    log.put(static_cast<char>(last ^ 0x40));
  }
  auto opened = pagestore::PackedDb::Open(pack);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->delta_stats().inserts, 1u);

  // The next append heals the log for real: the torn tail is truncated
  // on the write path and the new record committed after the survivor.
  ASSERT_TRUE(pagestore::PackAppend(pack, "aux3.xml",
                                    "<notes><note>z</note></notes>")
                  .ok());
  auto healed = pagestore::PackedDb::Open(pack);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ((*healed)->delta_stats().inserts, 2u);
}

TEST(UpdateDeltaLogTest, ZeroByteLogHealsOnNextAppend) {
  // A crash between the creating open and the first write leaves an
  // empty .delta; the next append must write the magic header (not
  // assume an existing file already has one) so the log stays openable.
  CorpusModel model;
  model.books.push_back(Book{0, "xml search in practice", 2000});
  const std::string pack = TestPath("update_delta_empty.qvpack");
  std::filesystem::remove(pack);
  std::filesystem::remove(pagestore::DeltaLogPath(pack));
  {
    std::shared_ptr<xml::Database> db = BuildFromCorpus(model.Documents());
    auto indexes = index::BuildDatabaseIndexes(*db);
    ASSERT_TRUE(pagestore::PackDatabase(*db, *indexes, pack).ok());
  }
  { std::ofstream touch(pagestore::DeltaLogPath(pack)); }
  ASSERT_TRUE(pagestore::PackAppend(pack, "aux.xml",
                                    "<notes><note>x</note></notes>")
                  .ok());
  auto opened = pagestore::PackedDb::Open(pack);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->delta_stats().inserts, 1u);
}

}  // namespace
}  // namespace quickview
