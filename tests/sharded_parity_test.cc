// The tentpole acceptance suite: sharding is an execution strategy,
// never a semantic. Differential parity over >= 64 distinct query plan
// signatures at shard counts {1, 2, 4} — every response byte-identical
// to the unsharded engine — plus the lazy-materialization guarantee on
// a packed shard set (first-10 reads strictly fewer pages than a drain,
// per shard) and the shard-hint routing contract.
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "engine/result_cursor.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "pagestore/shard_pack.h"
#include "storage/document_store.h"
#include "storage/shard_set.h"
#include "workload/bookrev_generator.h"

namespace quickview::engine {
namespace {

struct QuerySpec {
  std::vector<std::string> keywords;
  bool conjunctive = true;
};

/// Singles (conjunctive) plus every pair in both connectives over the
/// bookrev vocabulary: 9 + 36*2 = 81 candidate specs, comfortably over
/// the 64-signature floor the acceptance demands.
std::vector<QuerySpec> MakeQuerySpecs() {
  const std::vector<std::string> terms{
      "xml",     "search",  "web",   "database", "services",
      "systems", "queries", "index", "practice"};
  std::vector<QuerySpec> specs;
  for (const std::string& t : terms) specs.push_back({{t}, true});
  for (size_t i = 0; i < terms.size(); ++i) {
    for (size_t j = i + 1; j < terms.size(); ++j) {
      specs.push_back({{terms[i], terms[j]}, true});
      specs.push_back({{terms[i], terms[j]}, false});
    }
  }
  return specs;
}

SearchRequest MakeRequest(const QuerySpec& spec, size_t top_k = 10) {
  SearchRequest request;
  request.view = workload::BookRevView();
  request.keywords = spec.keywords;
  request.options.conjunctive = spec.conjunctive;
  request.options.top_k = top_k;
  return request;
}

std::vector<ShardContext> ContextsOf(const storage::ShardSet& shards) {
  std::vector<ShardContext> contexts;
  for (size_t i = 0; i < shards.size(); ++i) {
    const storage::Shard& shard = shards.shard(i);
    contexts.push_back(ShardContext{shard.database.get(),
                                    shard.index_source(),
                                    shard.store.get()});
  }
  return contexts;
}

void ExpectIdentical(const SearchResponse& expected,
                     const SearchResponse& actual,
                     const std::string& label) {
  EXPECT_EQ(expected.stats.view_results, actual.stats.view_results)
      << label;
  EXPECT_EQ(expected.stats.matching_results, actual.stats.matching_results)
      << label;
  EXPECT_EQ(expected.stats.view_bytes, actual.stats.view_bytes) << label;
  ASSERT_EQ(expected.hits.size(), actual.hits.size()) << label;
  for (size_t i = 0; i < expected.hits.size(); ++i) {
    SCOPED_TRACE(label + " hit " + std::to_string(i));
    EXPECT_EQ(expected.hits[i].xml, actual.hits[i].xml);
    EXPECT_EQ(expected.hits[i].tf, actual.hits[i].tf);
    EXPECT_EQ(expected.hits[i].byte_length, actual.hits[i].byte_length);
    EXPECT_DOUBLE_EQ(expected.hits[i].score, actual.hits[i].score);
  }
}

TEST(ShardedParityTest, SixtyFourSignaturesAtOneTwoFourShards) {
  workload::BookRevOptions opts;
  opts.num_books = 80;
  auto db = workload::GenerateBookRevDatabase(opts);
  auto indexes = index::BuildDatabaseIndexes(*db);
  storage::DocumentStore store(*db);
  ViewSearchEngine unsharded(db.get(), indexes.get(), &store);

  ThreadPool pool(4);
  std::vector<storage::ShardSet> shard_sets;
  std::vector<std::unique_ptr<ViewSearchEngine>> sharded;
  for (int n : {1, 2, 4}) {
    storage::ShardingSpec spec;
    spec.shards = n;
    spec.colocate_tag = "isbn";  // the BookRev view joins on isbn
    auto set = storage::ShardSet::Partition(*db, spec);
    ASSERT_TRUE(set.ok()) << set.status();
    shard_sets.push_back(std::move(*set));
    sharded.push_back(std::make_unique<ViewSearchEngine>(
        ContextsOf(shard_sets.back()), &pool));
  }

  std::set<std::string> signatures;
  for (const QuerySpec& spec : MakeQuerySpecs()) {
    SearchRequest request = MakeRequest(spec);
    auto plan = unsharded.PlanQuery(ComposeKeywordQuery(
        request.view, request.keywords, request.options.conjunctive));
    ASSERT_TRUE(plan.ok()) << plan.status();
    signatures.insert(plan->signature);

    auto expected = unsharded.Execute(request);
    ASSERT_TRUE(expected.ok()) << expected.status();
    for (size_t e = 0; e < sharded.size(); ++e) {
      auto actual = sharded[e]->Execute(request);
      ASSERT_TRUE(actual.ok()) << actual.status();
      std::string label;
      for (const std::string& k : spec.keywords) label += k + ",";
      label += spec.conjunctive ? "conj" : "disj";
      label += " @" + std::to_string(sharded[e]->shard_count()) + "sh";
      ExpectIdentical(*expected, *actual, label);
    }
  }
  EXPECT_GE(signatures.size(), 64u)
      << "differential must cover >= 64 distinct plan signatures";
}

TEST(ShardedParityTest, ShardHintExecutesOnlyThatShard) {
  workload::BookRevOptions opts;
  opts.num_books = 60;
  auto db = workload::GenerateBookRevDatabase(opts);
  storage::ShardingSpec spec;
  spec.shards = 4;
  spec.colocate_tag = "isbn";
  auto set = storage::ShardSet::Partition(*db, spec);
  ASSERT_TRUE(set.ok()) << set.status();
  ThreadPool pool(2);
  ViewSearchEngine engine(ContextsOf(*set), &pool);

  SearchRequest request;
  request.view = workload::BookRevView();
  request.keywords = {"xml"};
  request.shard = 2;
  auto cursor = engine.Open(request);
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  ASSERT_EQ((*cursor)->stats().shards.size(), 1u);
  EXPECT_EQ((*cursor)->stats().shards[0].shard, 2);

  // A hinted search ranks against that shard's view alone: fewer view
  // results than the whole corpus.
  SearchRequest all = request;
  all.shard = -1;
  auto global = engine.Execute(all);
  ASSERT_TRUE(global.ok());
  EXPECT_LT((*cursor)->stats().search.view_results,
            global->stats.view_results);

  // Out-of-range hints are typed errors, not empty answers.
  SearchRequest beyond = request;
  beyond.shard = 4;
  auto bad = engine.Open(beyond);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedParityTest, PackedShardFirstTenReadsFewerPagesPerShard) {
  // A ~1000-match disjunctive query over a 4-shard packed corpus:
  // fetching the global top 10 must read strictly fewer node-record
  // pages than draining everything — on EVERY shard, because unfetched
  // hits pin no pages anywhere.
  workload::BookRevOptions opts;
  opts.num_books = 1850;
  auto db = workload::GenerateBookRevDatabase(opts);
  storage::ShardingSpec spec;
  spec.shards = 4;
  spec.colocate_tag = "isbn";
  const std::string base =
      (std::filesystem::path(::testing::TempDir()) / "sharded_parity")
          .string();
  ASSERT_TRUE(pagestore::PackShardedDb(*db, spec, base).ok());

  SearchRequest request;
  request.view = workload::BookRevView();
  request.keywords = {"xml", "search", "web", "database"};
  request.options.conjunctive = false;
  request.options.top_k = 1u << 20;

  auto run = [&](size_t fetch) -> std::vector<ShardStats> {
    auto shards = storage::ShardSet::OpenPacked(base, /*total_frames=*/512);
    EXPECT_TRUE(shards.ok()) << shards.status();
    ViewSearchEngine engine(ContextsOf(*shards), nullptr);
    auto cursor = engine.Open(request);
    EXPECT_TRUE(cursor.ok()) << cursor.status();
    EXPECT_GT((*cursor)->stats().search.matching_results, 1000u)
        << "acceptance query must match on the order of 1000 results";
    auto hits = (*cursor)->FetchNext(
        fetch == 0 ? (*cursor)->pending() : fetch);
    EXPECT_TRUE(hits.ok()) << hits.status();
    return (*cursor)->stats().shards;
  };

  std::vector<ShardStats> first10 = run(10);
  std::vector<ShardStats> drain = run(0);
  ASSERT_EQ(first10.size(), 4u);
  ASSERT_EQ(drain.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    SCOPED_TRACE("shard " + std::to_string(i));
    EXPECT_GT(drain[i].pages_read, 0u)
        << "a full drain materializes from every shard";
    EXPECT_LT(first10[i].pages_read, drain[i].pages_read)
        << "first-10 must read strictly fewer pages than a drain";
  }
}

}  // namespace
}  // namespace quickview::engine
