// ResultCursor semantics: paged fetches must equal one big fetch, the
// Search/SearchView wrappers must stay byte-identical to the pre-cursor
// batch pipeline (reconstructed inline below), and materialization must
// be lazy — store fetches accrue with FetchNext, never up front. Runs
// under the Sanitize CI leg (the cursor pins PDTs and the evaluator
// arena across calls; lifetime bugs here are memory bugs).
#include "engine/result_cursor.h"

#include "common/deprecation.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "scoring/materializer.h"
#include "scoring/scorer.h"
#include "storage/document_store.h"
#include "workload/bookrev_generator.h"
#include "xquery/evaluator.h"

namespace quickview::engine {
namespace {

class ResultCursorTest : public ::testing::Test {
 protected:
  void SetUp() override { Rebuild(workload::BookRevOptions{}); }

  void Rebuild(const workload::BookRevOptions& opts) {
    db_ = workload::GenerateBookRevDatabase(opts);
    indexes_ = index::BuildDatabaseIndexes(*db_);
    store_ = std::make_unique<storage::DocumentStore>(*db_);
    engine_ = std::make_unique<ViewSearchEngine>(db_.get(), indexes_.get(),
                                                 store_.get());
  }

  Result<std::shared_ptr<const PreparedQuery>> Prepare(
      const std::vector<std::string>& keywords, bool conjunctive) {
    auto plan = engine_->PlanQuery(ComposeKeywordQuery(
        workload::BookRevView(), keywords, conjunctive));
    if (!plan.ok()) return plan.status();
    return engine_->BuildPdts(std::move(*plan));
  }

  static void ExpectSameHits(const std::vector<SearchHit>& expected,
                             const std::vector<SearchHit>& actual) {
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].xml, actual[i].xml) << "hit " << i;
      EXPECT_EQ(expected[i].score, actual[i].score) << "hit " << i;
      EXPECT_EQ(expected[i].tf, actual[i].tf) << "hit " << i;
      EXPECT_EQ(expected[i].byte_length, actual[i].byte_length)
          << "hit " << i;
    }
  }

  std::shared_ptr<xml::Database> db_;
  std::unique_ptr<index::DatabaseIndexes> indexes_;
  std::unique_ptr<storage::DocumentStore> store_;
  std::unique_ptr<ViewSearchEngine> engine_;
};

TEST_F(ResultCursorTest, PagedFetchesEqualOneBigFetch) {
  auto prepared = Prepare({"xml", "search"}, /*conjunctive=*/false);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  SearchOptions options;
  options.top_k = 10;

  auto whole = engine_->Open(*prepared, options);
  ASSERT_TRUE(whole.ok()) << whole.status();
  auto all = (*whole)->FetchNext(10);
  ASSERT_TRUE(all.ok()) << all.status();
  ASSERT_FALSE(all->empty());

  auto paged = engine_->Open(*prepared, options);
  ASSERT_TRUE(paged.ok()) << paged.status();
  std::vector<SearchHit> collected;
  while (!(*paged)->Done()) {
    auto page = (*paged)->FetchNext(3);
    ASSERT_TRUE(page.ok()) << page.status();
    ASSERT_FALSE(page->empty()) << "Done() false but page empty";
    EXPECT_LE(page->size(), 3u);
    for (SearchHit& hit : *page) collected.push_back(std::move(hit));
  }
  ExpectSameHits(*all, collected);
  EXPECT_EQ((*whole)->fetched(), (*paged)->fetched());
  EXPECT_EQ((*whole)->stats().search.store_fetches,
            (*paged)->stats().search.store_fetches);
  EXPECT_EQ((*whole)->stats().search.store_bytes, (*paged)->stats().search.store_bytes);
}

// The pre-cursor ExecutePrepared pipeline, reconstructed from its public
// pieces: evaluate -> ScoreResults (full sort) -> TakeTopK -> materialize
// every kept hit. The Search wrapper must reproduce it byte for byte.
TEST_F(ResultCursorTest, WrapperByteIdenticalToBatchPipeline) {
  const std::vector<std::string> keywords{"xml", "search"};
  auto prepared = Prepare(keywords, /*conjunctive=*/true);
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  xquery::Evaluator evaluator(db_.get());
  const QueryPlan& plan = (*prepared)->plan;
  for (size_t i = 0; i < plan.qpts.size(); ++i) {
    evaluator.OverrideDocument(plan.qpts[i].occurrence_name,
                               (*prepared)->pdts[i].get());
  }
  auto view_results = evaluator.Evaluate(plan.kq.view);
  ASSERT_TRUE(view_results.ok()) << view_results.status();
  scoring::ScoringOutcome outcome = scoring::ScoreResults(
      *view_results, plan.kq.keywords, plan.kq.conjunctive);
  scoring::TakeTopK(&outcome.ranked, 5);
  std::vector<SearchHit> reference;
  storage::DocumentStore::Stats fetches;
  for (const scoring::ScoredResult& r : outcome.ranked) {
    SearchHit hit;
    hit.score = r.score;
    hit.tf = r.tf;
    hit.byte_length = r.byte_length;
    auto xml = scoring::MaterializeToXml(r.result, store_.get(), &fetches);
    ASSERT_TRUE(xml.ok()) << xml.status();
    hit.xml = std::move(*xml);
    reference.push_back(std::move(hit));
  }
  ASSERT_FALSE(reference.empty());

  SearchOptions options;
  options.top_k = 5;
  QV_SUPPRESS_DEPRECATED_BEGIN
  auto wrapped = engine_->SearchView(workload::BookRevView(), keywords,
                                     options);
  QV_SUPPRESS_DEPRECATED_END
  ASSERT_TRUE(wrapped.ok()) << wrapped.status();
  ExpectSameHits(reference, wrapped->hits);
  EXPECT_EQ(wrapped->stats.store_fetches, fetches.fetch_calls);
  EXPECT_EQ(wrapped->stats.store_bytes, fetches.bytes_fetched);
}

// The acceptance criterion: with >= 100 matches, fetching 10 touches
// base data strictly less than draining everything — unfetched hits cost
// zero store fetches.
TEST_F(ResultCursorTest, FetchTenMaterializesLessThanDrain) {
  workload::BookRevOptions big;
  big.num_books = 400;
  Rebuild(big);
  const std::vector<std::string> keywords{"xml", "search", "web",
                                          "database"};
  auto prepared = Prepare(keywords, /*conjunctive=*/false);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  SearchOptions options;
  options.top_k = 1u << 20;  // stream everything the query matches

  auto first_page = engine_->Open(*prepared, options);
  ASSERT_TRUE(first_page.ok()) << first_page.status();
  ASSERT_GE((*first_page)->stats().search.matching_results, 100u);
  EXPECT_EQ((*first_page)->stats().search.store_fetches, 0u)
      << "opening a cursor must not touch base data";
  auto ten = (*first_page)->FetchNext(10);
  ASSERT_TRUE(ten.ok()) << ten.status();
  ASSERT_EQ(ten->size(), 10u);
  uint64_t ten_fetches = (*first_page)->stats().search.store_fetches;
  EXPECT_GT(ten_fetches, 0u);

  auto drained = engine_->Open(*prepared, options);
  ASSERT_TRUE(drained.ok()) << drained.status();
  auto everything = (*drained)->FetchNext((*drained)->pending());
  ASSERT_TRUE(everything.ok()) << everything.status();
  EXPECT_EQ(everything->size(), (*drained)->stats().search.matching_results);
  EXPECT_LT(ten_fetches, (*drained)->stats().search.store_fetches);

  // And the first ten of the drain are the ten the page returned.
  everything->resize(10);
  ExpectSameHits(*everything, *ten);
}

TEST_F(ResultCursorTest, ExhaustedCursorStaysExhausted) {
  auto prepared = Prepare({"xml"}, /*conjunctive=*/true);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  SearchOptions options;
  options.top_k = 1u << 20;
  auto cursor = engine_->Open(*prepared, options);
  ASSERT_TRUE(cursor.ok()) << cursor.status();

  auto all = (*cursor)->FetchNext((*cursor)->pending());
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_EQ(all->size(), (*cursor)->stats().search.matching_results);
  EXPECT_TRUE((*cursor)->Done());
  EXPECT_EQ((*cursor)->pending(), 0u);

  uint64_t fetches_before = (*cursor)->stats().search.store_fetches;
  auto empty = (*cursor)->FetchNext(10);
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_TRUE(empty->empty());
  EXPECT_EQ((*cursor)->fetched(), all->size());
  EXPECT_EQ((*cursor)->stats().search.store_fetches, fetches_before);
}

TEST_F(ResultCursorTest, FetchZeroIsANoOp) {
  auto prepared = Prepare({"xml"}, /*conjunctive=*/true);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto cursor = engine_->Open(*prepared, SearchOptions{});
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  auto none = (*cursor)->FetchNext(0);
  ASSERT_TRUE(none.ok()) << none.status();
  EXPECT_TRUE(none->empty());
  EXPECT_EQ((*cursor)->fetched(), 0u);
  EXPECT_EQ((*cursor)->stats().search.store_fetches, 0u);
  EXPECT_FALSE((*cursor)->Done());
}

TEST_F(ResultCursorTest, TopKBudgetCapsTheStream) {
  auto prepared = Prepare({"database"}, /*conjunctive=*/true);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  SearchOptions options;
  options.top_k = 2;
  auto cursor = engine_->Open(*prepared, options);
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  ASSERT_GT((*cursor)->stats().search.matching_results, 2u);
  auto hits = (*cursor)->FetchNext(100);
  ASSERT_TRUE(hits.ok()) << hits.status();
  EXPECT_EQ(hits->size(), 2u);
  EXPECT_TRUE((*cursor)->Done());
}

TEST_F(ResultCursorTest, CursorOutlivesCallerReferences) {
  // The cursor must pin the PreparedQuery (PDTs) and the evaluator's
  // result arena on its own: drop every caller-side reference before the
  // first fetch and compare against the wrapper.
  const std::vector<std::string> keywords{"xml", "search"};
  QV_SUPPRESS_DEPRECATED_BEGIN
  auto expected = engine_->SearchView(workload::BookRevView(), keywords,
                                      SearchOptions{});
  QV_SUPPRESS_DEPRECATED_END
  ASSERT_TRUE(expected.ok()) << expected.status();

  auto prepared = Prepare(keywords, /*conjunctive=*/true);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto cursor = engine_->Open(std::move(*prepared), SearchOptions{});
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  // *prepared was moved into Open; no caller-side owner remains.
  auto hits = (*cursor)->FetchNext((*cursor)->pending());
  ASSERT_TRUE(hits.ok()) << hits.status();
  ExpectSameHits(expected->hits, *hits);
}

TEST_F(ResultCursorTest, TopKZeroIsInvalidArgument) {
  auto prepared = Prepare({"xml"}, /*conjunctive=*/true);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  SearchOptions options;
  options.top_k = 0;
  auto cursor = engine_->Open(*prepared, options);
  ASSERT_FALSE(cursor.ok());
  EXPECT_EQ(cursor.status().code(), StatusCode::kInvalidArgument);

  QV_SUPPRESS_DEPRECATED_BEGIN
  auto response = engine_->SearchView(workload::BookRevView(), {"xml"},
                                      options);
  QV_SUPPRESS_DEPRECATED_END
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ResultCursorTest, EmptyKeywordListIsInvalidArgument) {
  QV_SUPPRESS_DEPRECATED_BEGIN
  auto response = engine_->SearchView(workload::BookRevView(), {},
                                      SearchOptions{});
  QV_SUPPRESS_DEPRECATED_END
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);

  // The full-query form: ftcontains() parses, but PlanQuery rejects it.
  QV_SUPPRESS_DEPRECATED_BEGIN
  auto full = engine_->Search(
      "let $view := " + workload::BookRevView() +
          "\nfor $qv in $view\nwhere $qv ftcontains()\nreturn $qv",
      SearchOptions{});
  QV_SUPPRESS_DEPRECATED_END
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace quickview::engine
