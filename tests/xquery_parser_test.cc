#include "xquery/parser.h"

#include <gtest/gtest.h>

#include "workload/bookrev_generator.h"

namespace quickview::xquery {
namespace {

TEST(ParserTest, SimplePath) {
  auto q = ParseQuery("fn:doc(books.xml)/books//book/isbn");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->body->kind, ExprKind::kPath);
  const auto& path = static_cast<const PathExpr&>(*q->body);
  EXPECT_EQ(path.source->kind, ExprKind::kDoc);
  ASSERT_EQ(path.steps.size(), 3u);
  EXPECT_FALSE(path.steps[0].descendant);
  EXPECT_TRUE(path.steps[1].descendant);
  EXPECT_EQ(path.steps[2].tag, "isbn");
}

TEST(ParserTest, PathPredicate) {
  auto q = ParseQuery("fn:doc(d.xml)/a//b[./year > 1995]");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& path = static_cast<const PathExpr&>(*q->body);
  ASSERT_EQ(path.steps.size(), 2u);
  ASSERT_EQ(path.steps[1].predicates.size(), 1u);
  EXPECT_EQ(path.steps[1].predicates[0]->kind, ExprKind::kComparison);
}

TEST(ParserTest, MidPathPredicate) {
  auto q = ParseQuery("fn:doc(d.xml)//b[./year > 1995]/title");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& path = static_cast<const PathExpr&>(*q->body);
  ASSERT_EQ(path.steps.size(), 2u);
  EXPECT_EQ(path.steps[0].predicates.size(), 1u);
  EXPECT_EQ(path.steps[1].tag, "title");
  EXPECT_TRUE(path.steps[1].predicates.empty());
}

TEST(ParserTest, BareTagPredicateIsContextRelative) {
  auto q = ParseQuery("fn:doc(d.xml)/a//b[year > 1995]");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& path = static_cast<const PathExpr&>(*q->body);
  ASSERT_EQ(path.steps.back().predicates.size(), 1u);
  const auto& cmp =
      static_cast<const ComparisonExpr&>(*path.steps.back().predicates[0]);
  ASSERT_EQ(cmp.left->kind, ExprKind::kPath);
  const auto& pred_path = static_cast<const PathExpr&>(*cmp.left);
  EXPECT_EQ(pred_path.source->kind, ExprKind::kContext);
  EXPECT_EQ(pred_path.steps[0].tag, "year");
}

TEST(ParserTest, FlworWithWhereAndJoin) {
  auto q = ParseQuery(
      "for $b in fn:doc(b.xml)/books//book "
      "where $b/isbn = $b/isbn2 return $b/title");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& flwor = static_cast<const FlworExpr&>(*q->body);
  ASSERT_EQ(flwor.clauses.size(), 1u);
  EXPECT_FALSE(flwor.clauses[0].is_let);
  EXPECT_EQ(flwor.clauses[0].var, "b");
  ASSERT_NE(flwor.where, nullptr);
  EXPECT_EQ(flwor.where->kind, ExprKind::kComparison);
  EXPECT_EQ(flwor.ret->kind, ExprKind::kPath);
}

TEST(ParserTest, ElementConstructorWithBracesAndText) {
  auto q = ParseQuery("<a>hello {fn:doc(d.xml)/x} <b>{.}</b></a>");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& ctor = static_cast<const ElementCtorExpr&>(*q->body);
  EXPECT_EQ(ctor.tag, "a");
  ASSERT_EQ(ctor.children.size(), 3u);
  EXPECT_EQ(ctor.children[0]->kind, ExprKind::kLiteral);
  EXPECT_EQ(ctor.children[1]->kind, ExprKind::kPath);
  EXPECT_EQ(ctor.children[2]->kind, ExprKind::kElementCtor);
}

TEST(ParserTest, IfThenElse) {
  auto q = ParseQuery(
      "if fn:doc(d.xml)/a then fn:doc(d.xml)/b else fn:doc(d.xml)/c");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body->kind, ExprKind::kIf);
}

TEST(ParserTest, FunctionDeclarationAndCall) {
  auto q = ParseQuery(
      "declare function reviews($b) { $b/review } "
      "reviews(fn:doc(d.xml)//book)");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->functions.size(), 1u);
  EXPECT_EQ(q->functions[0].name, "reviews");
  EXPECT_EQ(q->functions[0].params, (std::vector<std::string>{"b"}));
  EXPECT_EQ(q->body->kind, ExprKind::kFunctionCall);
}

TEST(ParserTest, SequencesAndEmptySequence) {
  auto q = ParseQuery("(fn:doc(a.xml)/x, fn:doc(b.xml)/y)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body->kind, ExprKind::kSequence);
  auto empty = ParseQuery("()");
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_TRUE(
      static_cast<const SequenceExpr&>(*empty->body).items.empty());
}

TEST(ParserTest, NestedFlworPaperFig2) {
  auto q = ParseQuery(workload::BookRevView());
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& flwor = static_cast<const FlworExpr&>(*q->body);
  EXPECT_EQ(flwor.ret->kind, ExprKind::kElementCtor);
}

TEST(ParserTest, KeywordQueryFig2) {
  auto kq = ParseKeywordQuery(workload::BookRevKeywordQuery());
  ASSERT_TRUE(kq.ok()) << kq.status();
  EXPECT_EQ(kq->keywords, (std::vector<std::string>{"xml", "search"}));
  EXPECT_TRUE(kq->conjunctive);
  EXPECT_EQ(kq->view.body->kind, ExprKind::kFlwor);
}

TEST(ParserTest, KeywordQueryDisjunctive) {
  auto kq = ParseKeywordQuery(
      "let $v := fn:doc(d.xml)//a for $x in $v "
      "where $x ftcontains('XML' | 'Search') return $x");
  ASSERT_TRUE(kq.ok()) << kq.status();
  EXPECT_FALSE(kq->conjunctive);
  EXPECT_EQ(kq->keywords.size(), 2u);
}

TEST(ParserTest, KeywordQueryLowercasesAndSplitsPhrases) {
  auto kq = ParseKeywordQuery(
      "let $v := fn:doc(d.xml)//a for $x in $v "
      "where $x ftcontains('XML Search') return $x");
  ASSERT_TRUE(kq.ok()) << kq.status();
  EXPECT_EQ(kq->keywords, (std::vector<std::string>{"xml", "search"}));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("for $x in").ok());
  EXPECT_FALSE(ParseQuery("fn:doc(").ok());
  EXPECT_FALSE(ParseQuery("<a>{$x}</b>").ok());  // mismatched ctor tags
  EXPECT_FALSE(ParseQuery("for $x in fn:doc(d.xml)//a").ok());  // no return
  EXPECT_FALSE(
      ParseKeywordQuery("for $x in fn:doc(d.xml)//a return $x").ok());
  EXPECT_FALSE(ParseKeywordQuery(
                   "let $v := fn:doc(d.xml)//a for $x in $v "
                   "where $x ftcontains('a' & 'b' | 'c') return $x")
                   .ok());  // mixed connectives
  // Wrong variable returned.
  EXPECT_FALSE(ParseKeywordQuery(
                   "let $v := fn:doc(d.xml)//a for $x in $v "
                   "where $x ftcontains('a') return $v")
                   .ok());
}

TEST(ParserTest, ExprToStringRoundtrips) {
  auto q = ParseQuery(
      "for $b in fn:doc(b.xml)/books//book[./year > 1995] "
      "return <r>{$b/title}</r>");
  ASSERT_TRUE(q.ok()) << q.status();
  std::string text = ExprToString(*q->body);
  auto q2 = ParseQuery(text);
  ASSERT_TRUE(q2.ok()) << q2.status() << " from: " << text;
  EXPECT_EQ(ExprToString(*q2->body), text);
}

}  // namespace
}  // namespace quickview::xquery
