// Page-level round trips of the packed storage engine: PagedFile frames
// and checksums, ChainWriter/ChainReader streams spanning pages, and
// DiskBTree bulk build + point lookups + prefix scans, including values
// that spill into posting-run overflow chains.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pagestore/buffer_pool.h"
#include "pagestore/disk_btree.h"
#include "pagestore/paged_file.h"

namespace quickview::pagestore {
namespace {

class PageStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/qvpack_pages_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".qvpack";
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(PageStoreTest, PageRoundTrip) {
  auto writer = PagedFileWriter::Create(path_);
  ASSERT_TRUE(writer.ok()) << writer.status();
  PageId a = (*writer)->Allocate();
  PageId b = (*writer)->Allocate();
  ASSERT_TRUE((*writer)->WritePage(a, PageType::kNodeRecords, "hello", b).ok());
  ASSERT_TRUE(
      (*writer)
          ->WritePage(b, PageType::kPostingRun, std::string(1000, 'x'),
                      kInvalidPage)
          .ok());
  ASSERT_TRUE((*writer)->Finish(a).ok());

  auto file = PagedFile::Open(path_);
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_EQ((*file)->page_count(), 3u);
  EXPECT_EQ((*file)->directory_page(), a);

  auto page_a = (*file)->ReadPage(a);
  ASSERT_TRUE(page_a.ok()) << page_a.status();
  EXPECT_EQ(page_a->type, PageType::kNodeRecords);
  EXPECT_EQ(page_a->payload, "hello");
  EXPECT_EQ(page_a->next_page, b);

  auto page_b = (*file)->ReadPage(b);
  ASSERT_TRUE(page_b.ok());
  EXPECT_EQ(page_b->payload.size(), 1000u);
  EXPECT_EQ(page_b->next_page, kInvalidPage);
}

TEST_F(PageStoreTest, CorruptionIsDetectedByChecksum) {
  auto writer = PagedFileWriter::Create(path_);
  ASSERT_TRUE(writer.ok());
  PageId a = (*writer)->Allocate();
  ASSERT_TRUE(
      (*writer)->WritePage(a, PageType::kNodeRecords, "payload", kInvalidPage)
          .ok());
  ASSERT_TRUE((*writer)->Finish(a).ok());

  // Flip one payload byte of page `a` on disk.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(a) * kPageSize + kPageHeaderSize);
    f.put('P');
  }
  auto file = PagedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  auto page = (*file)->ReadPage(a);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kInternal);
  EXPECT_NE(page.status().message().find("checksum"), std::string::npos);
}

TEST_F(PageStoreTest, OpenRejectsNonPackFiles) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "this is not a packed database";
  }
  auto file = PagedFile::Open(path_);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kInvalidArgument);

  auto missing = PagedFile::Open(path_ + ".does-not-exist");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(PageStoreTest, ChainSpansPages) {
  std::string blob;
  for (int i = 0; i < 3000; ++i) blob += "chunk-" + std::to_string(i) + ";";
  ASSERT_GT(blob.size(), 2 * kPagePayloadSize);

  PageId first;
  ChainWriter::Pos mid;
  size_t mid_offset_in_stream = blob.size() / 2;
  {
    auto writer = PagedFileWriter::Create(path_);
    ASSERT_TRUE(writer.ok());
    ChainWriter chain(writer->get(), PageType::kNodeRecords);
    ASSERT_TRUE(chain.Append(blob.substr(0, mid_offset_in_stream)).ok());
    mid = chain.Tell();
    ASSERT_TRUE(chain.Append(blob.substr(mid_offset_in_stream)).ok());
    auto root = chain.Finish();
    ASSERT_TRUE(root.ok());
    first = *root;
    ASSERT_TRUE((*writer)->Finish(first).ok());
  }

  auto file = PagedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  BufferPool pool(file->get());

  std::string round_trip;
  ChainReader reader(&pool, first, 0, nullptr);
  ASSERT_TRUE(reader.Read(blob.size(), &round_trip).ok());
  EXPECT_EQ(round_trip, blob);

  // A Tell() position addresses the byte the next Append wrote.
  std::string tail;
  ChainReader mid_reader(&pool, mid.page, mid.offset, nullptr);
  ASSERT_TRUE(
      mid_reader.Read(blob.size() - mid_offset_in_stream, &tail).ok());
  EXPECT_EQ(tail, blob.substr(mid_offset_in_stream));

  // Reading past the end of the chain is an error, not silence.
  ChainReader over_reader(&pool, first, 0, nullptr);
  std::string sink;
  EXPECT_FALSE(over_reader.Read(blob.size() + 1, &sink).ok());
}

TEST_F(PageStoreTest, DiskBTreeGetAndScanWithOverflow) {
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 2000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%05d", i);
    // Every 97th value is pushed past the inline limit to exercise
    // posting-run overflow chains (some span multiple pages).
    std::string value = (i % 97 == 0)
                            ? std::string(kMaxInlineValue * 5 + i, 'v')
                            : "value-" + std::to_string(i * 3);
    expected[key] = value;
  }

  PageId root;
  {
    auto writer = PagedFileWriter::Create(path_);
    ASSERT_TRUE(writer.ok());
    DiskBTreeBuilder builder(writer->get());
    for (const auto& [key, value] : expected) {
      ASSERT_TRUE(builder.Add(key, value).ok()) << key;
    }
    auto built = builder.Finish();
    ASSERT_TRUE(built.ok()) << built.status();
    root = *built;
    ASSERT_TRUE((*writer)->Finish(root).ok());
  }

  auto file = PagedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  BufferPool pool(file->get(), BufferPoolOptions{64});
  DiskBTree tree(&pool, root);

  // Point lookups: every present key, and misses on both sides.
  for (const auto& [key, value] : expected) {
    std::string got;
    auto found = tree.Get(key, &got);
    ASSERT_TRUE(found.ok()) << found.status();
    ASSERT_TRUE(*found) << key;
    EXPECT_EQ(got, value) << key;
  }
  std::string got;
  auto missing = tree.Get("key99999", &got);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(*missing);
  missing = tree.Get("aaa", &got);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(*missing);

  // Range scan from a mid key reproduces the tail of the map in order.
  std::vector<std::string> scanned;
  Status scan = tree.ScanFrom(
      "key01500",
      [&](std::string_view key, const DiskBTree::ValueRef& value)
          -> Result<bool> {
        auto bytes = value.Read();
        if (!bytes.ok()) return bytes.status();
        EXPECT_EQ(*bytes, expected[std::string(key)]);
        scanned.emplace_back(key);
        return true;
      });
  ASSERT_TRUE(scan.ok()) << scan;
  ASSERT_EQ(scanned.size(), 500u);
  EXPECT_EQ(scanned.front(), "key01500");
  EXPECT_EQ(scanned.back(), "key01999");
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));

  // Early-terminated scan stops where the callback says.
  size_t visited = 0;
  scan = tree.ScanFrom("key00000",
                       [&](std::string_view, const DiskBTree::ValueRef&)
                           -> Result<bool> { return ++visited < 10; });
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(visited, 10u);
}

TEST_F(PageStoreTest, DiskBTreeRejectsUnsortedKeys) {
  auto writer = PagedFileWriter::Create(path_);
  ASSERT_TRUE(writer.ok());
  DiskBTreeBuilder builder(writer->get());
  ASSERT_TRUE(builder.Add("b", "1").ok());
  Status out_of_order = builder.Add("a", "2");
  EXPECT_EQ(out_of_order.code(), StatusCode::kInvalidArgument);
  Status duplicate = builder.Add("b", "3");
  EXPECT_EQ(duplicate.code(), StatusCode::kInvalidArgument);
}

TEST_F(PageStoreTest, EmptyDiskBTree) {
  PageId root;
  {
    auto writer = PagedFileWriter::Create(path_);
    ASSERT_TRUE(writer.ok());
    DiskBTreeBuilder builder(writer->get());
    auto built = builder.Finish();
    ASSERT_TRUE(built.ok());
    root = *built;
    ASSERT_TRUE((*writer)->Finish(root).ok());
  }
  auto file = PagedFile::Open(path_);
  ASSERT_TRUE(file.ok());
  BufferPool pool(file->get());
  DiskBTree tree(&pool, root);
  std::string got;
  auto found = tree.Get("anything", &got);
  ASSERT_TRUE(found.ok());
  EXPECT_FALSE(*found);
  size_t visited = 0;
  ASSERT_TRUE(tree.ScanFrom("", [&](std::string_view,
                                    const DiskBTree::ValueRef&)
                                    -> Result<bool> {
                    ++visited;
                    return true;
                  }).ok());
  EXPECT_EQ(visited, 0u);
}

}  // namespace
}  // namespace quickview::pagestore
