// Medium-scale integration: the invariants the architecture promises,
// checked on a ~1 MB INEX-like corpus with the default view.
#include <gtest/gtest.h>

#include "baseline/naive_engine.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "storage/document_store.h"
#include "workload/inex_generator.h"
#include "workload/view_factory.h"
#include "xml/serializer.h"

namespace quickview {
namespace {

// View-form request through the unified entry point.
Result<engine::SearchResponse> ExecView(
    const engine::ViewSearchEngine& engine, const std::string& view,
    std::vector<std::string> keywords,
    engine::SearchOptions options = {}) {
  engine::SearchRequest request;
  request.view = view;
  request.keywords = std::move(keywords);
  request.options = options;
  return engine.Execute(request);
}

class InexScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::InexOptions opts;
    opts.target_bytes = 1 << 20;
    database_ = workload::GenerateInexDatabase(opts);
    indexes_ = index::BuildDatabaseIndexes(*database_);
    store_ = std::make_unique<storage::DocumentStore>(*database_);
    engine_ = std::make_unique<engine::ViewSearchEngine>(
        database_.get(), indexes_.get(), store_.get());
  }

  std::shared_ptr<xml::Database> database_;
  std::unique_ptr<index::DatabaseIndexes> indexes_;
  std::unique_ptr<storage::DocumentStore> store_;
  std::unique_ptr<engine::ViewSearchEngine> engine_;
};

TEST_F(InexScaleTest, ProbeCountIndependentOfDataSize) {
  // PrepareLists probes scale with the query, not the data: compare probe
  // counts on a corpus 4x larger.
  auto small = ExecView(
      *engine_, workload::BuildInexView(workload::ViewSpec{}),
      workload::KeywordsForTier(workload::KeywordTier::kMedium));
  ASSERT_TRUE(small.ok()) << small.status();

  workload::InexOptions big_opts;
  big_opts.target_bytes = 4 << 20;
  auto big_db = workload::GenerateInexDatabase(big_opts);
  auto big_indexes = index::BuildDatabaseIndexes(*big_db);
  storage::DocumentStore big_store(*big_db);
  engine::ViewSearchEngine big_engine(big_db.get(), big_indexes.get(),
                                      &big_store);
  auto big = ExecView(
      big_engine, workload::BuildInexView(workload::ViewSpec{}),
      workload::KeywordsForTier(workload::KeywordTier::kMedium));
  ASSERT_TRUE(big.ok()) << big.status();
  EXPECT_EQ(small->stats.pdt.index_probes, big->stats.pdt.index_probes);
  EXPECT_GT(big->stats.pdt.ids_processed, small->stats.pdt.ids_processed);
}

TEST_F(InexScaleTest, PdtsAreSmallFractionOfBase) {
  auto response = ExecView(
      *engine_, workload::BuildInexView(workload::ViewSpec{}),
      workload::KeywordsForTier(workload::KeywordTier::kMedium));
  ASSERT_TRUE(response.ok());
  const xml::Document* base = database_->GetDocument("inex.xml");
  uint64_t base_bytes = xml::SubtreeByteLength(*base, base->root());
  // The paper reports ~2 MB of PDTs per 500 MB (0.4%); we assert < 10%.
  EXPECT_LT(response->stats.pdt.pdt_bytes, base_bytes / 10);
}

TEST_F(InexScaleTest, StoreFetchesBoundedByTopKResults) {
  engine::SearchOptions options;
  options.top_k = 5;
  auto response = ExecView(
      *engine_, workload::BuildInexView(workload::ViewSpec{}),
      workload::KeywordsForTier(workload::KeywordTier::kLow), options);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->hits.size(), 5u);
  // Each hit has a handful of pruned nodes (title/bdy per article); a
  // generous per-hit bound still excludes "touched the whole corpus".
  EXPECT_LT(response->stats.store_fetches,
            5u * 2u * (response->stats.view_results + 4));
  EXPECT_LT(response->stats.store_bytes,
            xml::SubtreeByteLength(*database_->GetDocument("inex.xml"), 0));
}

TEST_F(InexScaleTest, ScoresAgreeWithBaselineAtScale) {
  baseline::NaiveEngine naive(database_.get());
  auto eff = ExecView(
      *engine_, workload::BuildInexView(workload::ViewSpec{}),
      workload::KeywordsForTier(workload::KeywordTier::kMedium));
  auto base = naive.SearchView(
      workload::BuildInexView(workload::ViewSpec{}),
      workload::KeywordsForTier(workload::KeywordTier::kMedium),
      engine::SearchOptions{});
  ASSERT_TRUE(eff.ok() && base.ok());
  ASSERT_EQ(eff->hits.size(), base->hits.size());
  ASSERT_FALSE(eff->hits.empty());
  for (size_t i = 0; i < eff->hits.size(); ++i) {
    EXPECT_DOUBLE_EQ(eff->hits[i].score, base->hits[i].score);
    EXPECT_EQ(eff->hits[i].xml, base->hits[i].xml);
  }
}

TEST_F(InexScaleTest, DisjointKeywordTiersRankDifferently) {
  auto low = ExecView(
      *engine_, workload::BuildInexView(workload::ViewSpec{}),
      workload::KeywordsForTier(workload::KeywordTier::kLow));
  auto high = ExecView(
      *engine_, workload::BuildInexView(workload::ViewSpec{}),
      workload::KeywordsForTier(workload::KeywordTier::kHigh));
  ASSERT_TRUE(low.ok() && high.ok());
  // Frequent terms match far more view results than rare terms.
  EXPECT_GT(low->stats.matching_results, high->stats.matching_results);
}

}  // namespace
}  // namespace quickview
