// Appendix D's equivalence claim, as tests: surface query forms and their
// core-grammar normalizations must generate structurally identical QPTs —
// path predicates vs where clauses, let-bound paths vs inlined paths,
// function calls vs inlined bodies.
#include <gtest/gtest.h>

#include "qpt/generate_qpt.h"
#include "xquery/parser.h"

namespace quickview::qpt {
namespace {

/// Canonical structural rendering, ignoring occurrence names.
std::string Shape(const std::string& view) {
  auto query = xquery::ParseQuery(view);
  EXPECT_TRUE(query.ok()) << query.status() << "\n" << view;
  if (!query.ok()) return "";
  auto qpts = GenerateQpts(&*query);
  EXPECT_TRUE(qpts.ok()) << qpts.status() << "\n" << view;
  if (!qpts.ok()) return "";
  std::string out;
  for (const Qpt& qpt : *qpts) out += qpt.ToString() + "---\n";
  return out;
}

TEST(QptEquivalenceTest, PathPredicateEqualsWhereClause) {
  std::string with_pred =
      "for $b in fn:doc(d.xml)/books//book[./year > 1995] "
      "return <r>{$b/title}</r>";
  std::string with_where =
      "for $b in fn:doc(d.xml)/books//book where $b/year > 1995 "
      "return <r>{$b/title}</r>";
  EXPECT_EQ(Shape(with_pred), Shape(with_where));
}

TEST(QptEquivalenceTest, BareTagPredicateEqualsContextPredicate) {
  EXPECT_EQ(Shape("fn:doc(d.xml)//book[year > 1995]"),
            Shape("fn:doc(d.xml)//book[./year > 1995]"));
}

TEST(QptEquivalenceTest, FunctionCallEqualsInlinedBody) {
  std::string with_function =
      "declare function titled($b) { <r>{$b/title}</r> } "
      "for $b in fn:doc(d.xml)//book return titled($b)";
  std::string inlined =
      "for $b in fn:doc(d.xml)//book return <r>{$b/title}</r>";
  EXPECT_EQ(Shape(with_function), Shape(inlined));
}

TEST(QptEquivalenceTest, LetBoundPathEqualsInlinedPath) {
  std::string with_let =
      "for $b in fn:doc(d.xml)//book "
      "let $t in $b/title return <r>{$t}</r>";
  std::string inlined =
      "for $b in fn:doc(d.xml)//book return <r>{$b/title}</r>";
  EXPECT_EQ(Shape(with_let), Shape(inlined));
}

TEST(QptEquivalenceTest, SequenceReturnEqualsConstructorChildren) {
  // (a, b) in a return behaves like two constructor children w.r.t.
  // optionality: both forms yield optional first edges.
  std::string as_sequence =
      "for $b in fn:doc(d.xml)//book return ($b/title, $b/isbn)";
  std::string as_ctor =
      "for $b in fn:doc(d.xml)//book return <r>{$b/title}, {$b/isbn}</r>";
  EXPECT_EQ(Shape(as_sequence), Shape(as_ctor));
}

TEST(QptEquivalenceTest, WhereExistenceEqualsPredicateExistence) {
  EXPECT_EQ(Shape("for $b in fn:doc(d.xml)//book[./isbn] return $b"),
            Shape("for $b in fn:doc(d.xml)//book where $b/isbn "
                  "return $b"));
}

}  // namespace
}  // namespace quickview::qpt
