#include "index/btree.h"

#include <algorithm>
#include <map>
#include <random>

#include <gtest/gtest.h>

namespace quickview::index {
namespace {

TEST(BTreeTest, InsertGetOverwrite) {
  BTree tree;
  tree.Insert("k1", "v1");
  tree.Insert("k2", "v2");
  std::string value;
  EXPECT_TRUE(tree.Get("k1", &value));
  EXPECT_EQ(value, "v1");
  tree.Insert("k1", "v1b");
  EXPECT_TRUE(tree.Get("k1", &value));
  EXPECT_EQ(value, "v1b");
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_FALSE(tree.Get("k3", nullptr));
}

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Get("x", nullptr));
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_TRUE(tree.PrefixScan("p").empty());
}

TEST(BTreeTest, IterationInKeyOrderAcrossSplits) {
  BTree tree;
  std::vector<std::string> keys;
  for (int i = 999; i >= 0; --i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%04d", i);
    keys.push_back(buf);
    tree.Insert(buf, "v");
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_GT(tree.height(), 1);
  size_t i = 0;
  for (BTree::Iterator it = tree.Begin(); it.Valid(); it.Next(), ++i) {
    ASSERT_LT(i, keys.size());
    EXPECT_EQ(it.key(), keys[i]);
  }
  EXPECT_EQ(i, keys.size());
}

TEST(BTreeTest, SeekFindsFirstKeyNotLess) {
  BTree tree;
  tree.Insert("b", "1");
  tree.Insert("d", "2");
  tree.Insert("f", "3");
  EXPECT_EQ(tree.Seek("a").key(), "b");
  EXPECT_EQ(tree.Seek("b").key(), "b");
  EXPECT_EQ(tree.Seek("c").key(), "d");
  EXPECT_FALSE(tree.Seek("g").Valid());
}

TEST(BTreeTest, PrefixScan) {
  BTree tree;
  tree.Insert("path/a\x01v1", "1");
  tree.Insert("path/a\x01v2", "2");
  tree.Insert("path/ab\x01v", "3");
  tree.Insert("path/b\x01v", "4");
  auto rows = tree.PrefixScan("path/a\x01");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].second, "1");
  EXPECT_EQ(rows[1].second, "2");
}

TEST(BTreeTest, Delete) {
  BTree tree;
  for (int i = 0; i < 200; ++i) tree.Insert("k" + std::to_string(i), "v");
  EXPECT_TRUE(tree.Delete("k100"));
  EXPECT_FALSE(tree.Delete("k100"));
  EXPECT_FALSE(tree.Get("k100", nullptr));
  EXPECT_EQ(tree.size(), 199u);
  // Iteration skips deleted keys.
  size_t count = 0;
  for (BTree::Iterator it = tree.Begin(); it.Valid(); it.Next()) ++count;
  EXPECT_EQ(count, 199u);
}

TEST(BTreeTest, StatsCountNodeVisits) {
  BTree tree;
  for (int i = 0; i < 5000; ++i) {
    tree.Insert("key" + std::to_string(i), "v");
  }
  tree.ResetStats();
  EXPECT_TRUE(tree.Get("key2500", nullptr));
  EXPECT_GE(tree.stats().nodes_visited, static_cast<uint64_t>(tree.height()));
}

TEST(BTreeTest, RandomizedAgainstStdMap) {
  // Property test: B+-tree behaves like an ordered map under a random
  // workload of inserts, overwrites, deletes and seeks.
  BTree tree;
  std::map<std::string, std::string> reference;
  std::mt19937_64 rng(1234);
  for (int op = 0; op < 20000; ++op) {
    std::string key = "k" + std::to_string(rng() % 3000);
    switch (rng() % 4) {
      case 0:
      case 1: {
        std::string value = "v" + std::to_string(rng());
        tree.Insert(key, value);
        reference[key] = value;
        break;
      }
      case 2: {
        EXPECT_EQ(tree.Delete(key), reference.erase(key) > 0) << key;
        break;
      }
      case 3: {
        std::string value;
        bool found = tree.Get(key, &value);
        auto it = reference.find(key);
        EXPECT_EQ(found, it != reference.end()) << key;
        if (found && it != reference.end()) {
          EXPECT_EQ(value, it->second);
        }
        break;
      }
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
  // Full iteration must match the reference map exactly.
  auto ref_it = reference.begin();
  for (BTree::Iterator it = tree.Begin(); it.Valid(); it.Next(), ++ref_it) {
    ASSERT_NE(ref_it, reference.end());
    EXPECT_EQ(it.key(), ref_it->first);
    EXPECT_EQ(it.value(), ref_it->second);
  }
  EXPECT_EQ(ref_it, reference.end());
}

}  // namespace
}  // namespace quickview::index
