// Round-trip and byte-length properties of the XML substrate on random
// documents: serialize∘parse must be the identity on serialized form, and
// SubtreeByteLength must equal the serialized size everywhere (it is the
// len(e) of score normalization, so an off-by-one here silently breaks
// Theorem 4.1 parity).
#include <random>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "xml/dom.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/tokenizer.h"

namespace quickview::xml {
namespace {

std::shared_ptr<Document> RandomDocument(std::mt19937_64* rng) {
  static const char* kTags[] = {"a", "bee", "c-d", "x_y", "tag9"};
  static const char* kTexts[] = {"", "hello world", "a&b", "<tag>",
                                 "it's \"quoted\"", "multi  space",
                                 "1995", "xml search xml"};
  auto doc = std::make_shared<Document>(1 + (*rng)() % 5);
  NodeIndex root = doc->CreateRoot(kTags[(*rng)() % 5]);
  doc->node(root).text = kTexts[(*rng)() % 8];
  std::vector<std::pair<NodeIndex, int>> frontier = {{root, 1}};
  int budget = static_cast<int>((*rng)() % 40);
  while (budget-- > 0 && !frontier.empty()) {
    auto [parent, depth] = frontier[(*rng)() % frontier.size()];
    NodeIndex child = doc->AddChild(parent, kTags[(*rng)() % 5]);
    doc->node(child).text = kTexts[(*rng)() % 8];
    if (depth < 6) frontier.emplace_back(child, depth + 1);
  }
  return doc;
}

class XmlRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(XmlRoundTripProperty, SerializeParseSerializeIsStable) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 25; ++round) {
    auto doc = RandomDocument(&rng);
    std::string first = Serialize(*doc);
    auto reparsed = ParseXml(first, doc->root_component());
    ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << first;
    EXPECT_EQ(Serialize(**reparsed), first);
    // Same elements, same Dewey ids (node storage order may differ:
    // generation order vs document order).
    ASSERT_EQ((*reparsed)->size(), doc->size());
    auto snapshot = [](const Document& d) {
      std::set<std::tuple<std::string, std::string, std::string>> out;
      for (NodeIndex i = 0; i < d.size(); ++i) {
        out.insert({d.node(i).id.ToString(), d.node(i).tag,
                    d.node(i).text});
      }
      return out;
    };
    EXPECT_EQ(snapshot(**reparsed), snapshot(*doc));
  }
}

TEST_P(XmlRoundTripProperty, ByteLengthEqualsSerializedSizeEverywhere) {
  std::mt19937_64 rng(GetParam() + 1000);
  for (int round = 0; round < 25; ++round) {
    auto doc = RandomDocument(&rng);
    for (NodeIndex i = 0; i < doc->size(); ++i) {
      EXPECT_EQ(SubtreeByteLength(*doc, i), Serialize(*doc, i).size());
    }
  }
}

TEST_P(XmlRoundTripProperty, IndexedTfMatchesTokenizerEverywhere) {
  // The inverted index must agree with a direct tokenization of the
  // document — the foundation of tf parity.
  std::mt19937_64 rng(GetParam() + 2000);
  auto doc = RandomDocument(&rng);
  auto indexes = index::BuildDocumentIndexes(*doc);
  for (NodeIndex i = 0; i < doc->size(); ++i) {
    std::map<std::string, uint32_t> direct;
    for (const std::string& term : DirectTerms(doc->node(i))) {
      ++direct[term];
    }
    for (const auto& [term, count] : direct) {
      uint32_t tf = 0;
      EXPECT_TRUE(indexes->inverted_index.Contains(term, doc->node(i).id,
                                                   &tf));
      EXPECT_EQ(tf, count) << term;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripProperty,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace quickview::xml
