// Extended B+-tree coverage: boundary keys, leaf-chain integrity after
// deletes, prefix scans at structural edges, and bulk ordering under
// adversarial insertion orders.
#include "index/btree.h"

#include <algorithm>
#include <map>
#include <random>

#include <gtest/gtest.h>

namespace quickview::index {
namespace {

TEST(BTreeExtendedTest, EmptyStringKeyIsValid) {
  BTree tree;
  tree.Insert("", "empty");
  tree.Insert("a", "letter");
  std::string value;
  EXPECT_TRUE(tree.Get("", &value));
  EXPECT_EQ(value, "empty");
  EXPECT_EQ(tree.Begin().key(), "");
}

TEST(BTreeExtendedTest, BinaryKeysWithEmbeddedSeparators) {
  BTree tree;
  std::string key1 = std::string("a") + '\x01' + "b";
  std::string key2 = std::string("a") + '\x01' + '\x00' + "b";
  tree.Insert(key1, "1");
  tree.Insert(key2, "2");
  std::string value;
  EXPECT_TRUE(tree.Get(key1, &value));
  EXPECT_EQ(value, "1");
  EXPECT_TRUE(tree.Get(key2, &value));
  EXPECT_EQ(value, "2");
}

TEST(BTreeExtendedTest, LeafChainSurvivesHeavyDeletion) {
  BTree tree;
  for (int i = 0; i < 2000; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%05d", i);
    tree.Insert(buf, "v");
  }
  // Delete every key in two whole leaf-sized stripes.
  for (int i = 300; i < 500; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%05d", i);
    ASSERT_TRUE(tree.Delete(buf));
  }
  // Iteration skips the hole without stalling or duplicating.
  int count = 0;
  std::string last;
  for (BTree::Iterator it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_LT(last, it.key());
    last = it.key();
    ++count;
  }
  EXPECT_EQ(count, 1800);
  // Seek into the hole lands on the first surviving key.
  EXPECT_EQ(tree.Seek("k00400").key(), "k00500");
}

TEST(BTreeExtendedTest, DeleteThenReinsertRoundTrips) {
  // The live index write path deletes and re-inserts the same key space
  // on every document replacement; the tree must stay equivalent to a
  // reference map through randomized delete/reinsert waves.
  BTree tree;
  std::map<std::string, std::string> reference;
  std::mt19937_64 rng(99);
  auto key_of = [](int k) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%05d", k);
    return std::string(buf);
  };
  for (int i = 0; i < 1500; ++i) {
    tree.Insert(key_of(i), "v0");
    reference[key_of(i)] = "v0";
  }
  for (int wave = 1; wave <= 4; ++wave) {
    for (int n = 0; n < 400; ++n) {
      std::string key = key_of(static_cast<int>(rng() % 1500));
      if (rng() % 2 == 0) {
        EXPECT_EQ(tree.Delete(key), reference.erase(key) != 0) << key;
      } else {
        std::string value = "v" + std::to_string(wave);
        tree.Insert(key, value);
        reference[key] = value;
      }
    }
    ASSERT_EQ(tree.size(), reference.size()) << "wave " << wave;
    auto expected = reference.begin();
    for (BTree::Iterator it = tree.Begin(); it.Valid();
         it.Next(), ++expected) {
      ASSERT_NE(expected, reference.end());
      EXPECT_EQ(it.key(), expected->first);
      EXPECT_EQ(it.value(), expected->second);
    }
    EXPECT_EQ(expected, reference.end());
  }
}

TEST(BTreeExtendedTest, IteratorSkipsRemovalsAheadOfIt) {
  // An iterator positioned before a region that is subsequently deleted
  // must advance past the hole (and any fully emptied leaves) without
  // stalling, duplicating or touching dead entries.
  BTree tree;
  auto key_of = [](int k) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%05d", k);
    return std::string(buf);
  };
  for (int i = 0; i < 2000; ++i) tree.Insert(key_of(i), "v");
  BTree::Iterator it = tree.Begin();
  for (int i = 1000; i < 1500; ++i) ASSERT_TRUE(tree.Delete(key_of(i)));
  int seen = 0;
  std::string last;
  for (; it.Valid(); it.Next()) {
    EXPECT_LT(last, it.key());
    EXPECT_TRUE(it.key() < key_of(1000) || it.key() >= key_of(1500));
    last = it.key();
    ++seen;
  }
  EXPECT_EQ(seen, 1500);
}

TEST(BTreeExtendedTest, DeleteEverythingThenRebuild) {
  BTree tree;
  auto key_of = [](int k) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%05d", k);
    return std::string(buf);
  };
  for (int i = 0; i < 1200; ++i) tree.Insert(key_of(i), "old");
  for (int i = 0; i < 1200; ++i) ASSERT_TRUE(tree.Delete(key_of(i)));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_FALSE(tree.Get(key_of(7), nullptr));
  // Re-insertion over the emptied (but still structured) tree splits and
  // chains correctly again.
  for (int i = 0; i < 1200; ++i) tree.Insert(key_of(i), "new");
  EXPECT_EQ(tree.size(), 1200u);
  int count = 0;
  for (BTree::Iterator it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.value(), "new");
    ++count;
  }
  EXPECT_EQ(count, 1200);
}

TEST(BTreeExtendedTest, DeleteMissingAndDoubleDeleteAreNoOps) {
  BTree tree;
  tree.Insert("a", "1");
  tree.Insert("b", "2");
  EXPECT_FALSE(tree.Delete("c"));
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(tree.Delete("a"));
  EXPECT_FALSE(tree.Delete("a"));
  EXPECT_EQ(tree.size(), 1u);
  std::string value;
  EXPECT_TRUE(tree.Get("b", &value));
  EXPECT_EQ(value, "2");
}

TEST(BTreeExtendedTest, PrefixScanAtStructuralEdges) {
  BTree tree;
  for (int i = 0; i < 500; ++i) {
    tree.Insert("p" + std::to_string(i / 100) + "/" + std::to_string(i),
                "v");
  }
  auto rows = tree.PrefixScan("p4/");
  EXPECT_EQ(rows.size(), 100u);
  EXPECT_TRUE(tree.PrefixScan("p9/").empty());
  EXPECT_EQ(tree.PrefixScan("p").size(), 500u);
}

TEST(BTreeExtendedTest, DescendingAndAlternatingInsertionOrders) {
  for (int mode = 0; mode < 2; ++mode) {
    BTree tree;
    std::vector<std::string> keys;
    for (int i = 0; i < 1000; ++i) {
      int k = mode == 0 ? 999 - i : (i % 2 == 0 ? i : 999 - i);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "k%04d", k);
      keys.push_back(buf);
      tree.Insert(buf, "v");
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    size_t i = 0;
    for (BTree::Iterator it = tree.Begin(); it.Valid(); it.Next(), ++i) {
      ASSERT_LT(i, keys.size());
      EXPECT_EQ(it.key(), keys[i]);
    }
    EXPECT_EQ(i, keys.size());
  }
}

TEST(BTreeExtendedTest, LargeValuesRoundTrip) {
  BTree tree;
  std::string big(100000, 'x');
  big[50000] = '\0';
  tree.Insert("big", big);
  std::string value;
  ASSERT_TRUE(tree.Get("big", &value));
  EXPECT_EQ(value, big);
}

TEST(BTreeExtendedTest, SeekOnEmptyAndPastEnd) {
  BTree tree;
  EXPECT_FALSE(tree.Seek("anything").Valid());
  tree.Insert("m", "v");
  EXPECT_FALSE(tree.Seek("z").Valid());
  EXPECT_TRUE(tree.Seek("a").Valid());
}

}  // namespace
}  // namespace quickview::index
