// The crash-injection harness: the WAL's durability contract, proven by
// actually crashing. Each trial forks a child that ingests a scripted
// mutation history through LiveDatabase's durable commit path with a
// crash countdown armed (common/failpoint.h); the child _exit()s — no
// destructors, no flushes, possibly mid-write with a torn tail — at one
// of the four injection crossings of some commit. The parent then
// reopens the WAL the corpse left behind and asserts the three clauses
// of the contract:
//
//   1. The log is ALWAYS openable — recovery classifies whatever the
//      crash left as a clean log or a torn tail, never a fatal error.
//   2. No acked commit is lost: the child fdatasync's an ack ledger
//      after every successful commit, and the recovered record count R
//      satisfies acked <= R <= |script| — everything acknowledged
//      survived, anything extra was a complete, committed record.
//   3. The recovered corpus is byte-identical to an oracle that applied
//      exactly ops[0..R): same index state (root Dewey component
//      masked, as in update_differential_test) and identical search
//      responses — including identical errors — for every document.
//
// 220 trials with countdowns spread across the whole crossing space
// gives >200 distinct randomized kill points, including torn writes
// (MaybeTornWrite leaves a pseudo-random strict prefix of the batch).
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/sync.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "storage/live_database.h"

namespace quickview {
namespace {

struct Op {
  bool remove = false;
  std::string name;
  std::string xml;
};

std::string DocName(uint64_t i) {
  return "doc" + std::to_string(i) + ".xml";
}

// xorshift-ish deterministic stream; no <random> so the script for a
// given seed is stable across library versions.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

/// A 40-op insert/replace/remove script over doc0..doc7. Removes only
/// target names present at that point of the FULL sequence, so every
/// prefix of the script is a valid history in itself — exactly what
/// recovery replays.
std::vector<Op> MakeScript(uint64_t seed) {
  const char* const kWords[] = {"alpha", "bravo", "charlie", "delta",
                                "echo",  "fox",   "golf",    "hotel"};
  uint64_t rng = seed * 2654435761u + 88172645463325252ull;
  std::vector<Op> ops;
  std::set<std::string> present;
  for (int i = 0; i < 40; ++i) {
    Op op;
    if (!present.empty() && NextRand(&rng) % 4 == 0) {
      auto it = present.begin();
      std::advance(it, static_cast<long>(NextRand(&rng) % present.size()));
      op.remove = true;
      op.name = *it;
      present.erase(it);
    } else {
      op.name = DocName(NextRand(&rng) % 8);
      op.xml = std::string("<d><a>term v") + std::to_string(i) + " " +
               kWords[NextRand(&rng) % 8] + "</a><b>" +
               kWords[NextRand(&rng) % 8] + "</b></d>";
      present.insert(op.name);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

/// The child's whole life (called between fork and _exit; must not touch
/// gtest): replay-open the WAL, run the script with the crash armed,
/// durably ack each commit. Distinct exit codes diagnose setup failures.
int RunChild(const std::vector<Op>& ops, const std::string& wal_path,
             const std::string& ack_path, int64_t countdown,
             uint64_t torn_seed) {
  int ack_fd = ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (ack_fd < 0) return 70;
  storage::LiveDatabase live;
  if (!live.OpenWal(wal_path).ok()) return 71;
  fail::ArmCrash(countdown, torn_seed);
  uint64_t acked = 0;
  for (const Op& op : ops) {
    Status status = op.remove ? live.CommitRemove(op.name)
                              : live.CommitInsert(op.name, op.xml);
    if (!status.ok()) return 72;
    ++acked;
    // The ack ledger is the harness's ground truth for "the commit was
    // acknowledged", so it must itself be durable before the next op.
    if (::pwrite(ack_fd, &acked, sizeof acked, 0) !=  // lint:allow(raw-durability)
        static_cast<ssize_t>(sizeof acked)) {
      return 73;
    }
    if (::fdatasync(ack_fd) != 0) return 73;  // lint:allow(raw-durability)
  }
  fail::Disarm();
  ::close(ack_fd);
  return 0;
}

uint64_t ReadAcked(const std::string& ack_path) {
  int fd = ::open(ack_path.c_str(), O_RDONLY);
  if (fd < 0) return 0;
  uint64_t acked = 0;
  ssize_t n = ::pread(fd, &acked, sizeof acked, 0);
  ::close(fd);
  return n == static_cast<ssize_t>(sizeof acked) ? acked : 0;
}

// --- corpus comparison (same masking idea as update_differential_test:
// the root Dewey component depends on insertion order, which a replayed
// prefix legitimately repeats but a from-scratch oracle also reproduces;
// mask it anyway so the check pins logical content, not allocation) ----

std::vector<uint32_t> TailComponents(const xml::DeweyId& id) {
  const std::vector<uint32_t>& all = id.components();
  return std::vector<uint32_t>(all.begin() + (all.empty() ? 0 : 1),
                               all.end());
}

using IndexDump = std::vector<
    std::tuple<std::string, std::string, std::string, std::vector<uint32_t>,
               uint64_t>>;

IndexDump DumpIndexes(const index::DatabaseIndexes& indexes) {
  IndexDump out;
  for (const auto& [name, doc] : indexes.all()) {
    doc->path_index.ForEachRow(
        [&, doc_name = name](const std::string& path, const std::string& value,
                             const std::vector<index::PathEntry>& entries) {
          for (const index::PathEntry& entry : entries) {
            out.emplace_back(doc_name, "path:" + path, value,
                             TailComponents(entry.id), entry.byte_length);
          }
        });
    doc->inverted_index.ForEachPosting(
        [&, doc_name = name](const std::string& term, const xml::DeweyId& id,
                             uint32_t tf) {
          out.emplace_back(doc_name, "term:" + term, "", TailComponents(id),
                           tf);
        });
  }
  return out;
}

void ExpectSameSearchResults(const storage::LiveDatabase& recovered,
                             const storage::LiveDatabase& oracle,
                             const std::string& context) {
  qv::ReaderLock recovered_lock(recovered.mu());
  qv::ReaderLock oracle_lock(oracle.mu());
  std::shared_ptr<const storage::DocumentStore> recovered_store =
      recovered.store();
  std::shared_ptr<const storage::DocumentStore> oracle_store = oracle.store();
  engine::ViewSearchEngine recovered_engine(
      recovered.database(), recovered.indexes(), recovered_store.get());
  engine::ViewSearchEngine oracle_engine(
      oracle.database(), oracle.indexes(), oracle_store.get());
  for (uint64_t d = 0; d < 8; ++d) {
    engine::SearchRequest request;
    request.view = "for $x in fn:doc(" + DocName(d) + ")//a return $x";
    request.keywords = {"term"};
    request.options.top_k = 10;
    Result<engine::SearchResponse> expected = oracle_engine.Execute(request);
    Result<engine::SearchResponse> actual = recovered_engine.Execute(request);
    const std::string doc_context = context + " " + DocName(d);
    ASSERT_EQ(expected.ok(), actual.ok())
        << doc_context << ": " << expected.status().ToString() << " vs "
        << actual.status().ToString();
    if (!expected.ok()) {
      // A removed (or never-inserted) document errors identically.
      EXPECT_EQ(expected.status().code(), actual.status().code())
          << doc_context;
      continue;
    }
    ASSERT_EQ(expected->hits.size(), actual->hits.size()) << doc_context;
    for (size_t i = 0; i < expected->hits.size(); ++i) {
      EXPECT_EQ(expected->hits[i].xml, actual->hits[i].xml)
          << doc_context << " hit " << i;
      EXPECT_EQ(expected->hits[i].score, actual->hits[i].score)
          << doc_context << " hit " << i;
      EXPECT_EQ(expected->hits[i].tf, actual->hits[i].tf)
          << doc_context << " hit " << i;
    }
  }
}

TEST(WalCrashTest, RecoveredStateIsAPrefixOfAckedHistory) {
  constexpr int kTrials = 220;
  // 40 ops x 4 injection crossings per commit (before_write, torn_write,
  // before_sync, after_sync) = 160 crossings; spreading countdowns over
  // [1, 160] crashes every trial somewhere in that space.
  constexpr int64_t kCrossings = 160;
  const std::string dir = ::testing::TempDir();
  int crashed = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::vector<Op> ops = MakeScript(static_cast<uint64_t>(trial));
    const std::string wal_path =
        (std::filesystem::path(dir) / ("crash_" + std::to_string(trial) +
                                       ".wal"))
            .string();
    const std::string ack_path = wal_path + ".ack";
    std::filesystem::remove(wal_path);
    std::filesystem::remove(ack_path);
    const int64_t countdown =
        1 + static_cast<int64_t>(static_cast<uint64_t>(trial) *
                                 2654435761u % kCrossings);

    pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      _exit(RunChild(ops, wal_path, ack_path, countdown,
                     static_cast<uint64_t>(trial)));
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status)) << "child died abnormally";
    const int code = WEXITSTATUS(status);
    ASSERT_TRUE(code == 0 || code == fail::kCrashExitCode)
        << "child exit code " << code;
    if (code == fail::kCrashExitCode) ++crashed;
    const uint64_t acked = ReadAcked(ack_path);

    // Clause 1: whatever the crash left behind must open.
    storage::LiveDatabase recovered;
    Status reopened = recovered.OpenWal(wal_path);
    ASSERT_TRUE(reopened.ok())
        << "unopenable after crash: " << reopened.ToString();
    const uint64_t replayed =
        recovered.wal()->replay().payloads.size();

    // Clause 2: acked <= R <= |script| — no acknowledged commit lost,
    // nothing recovered beyond the script.
    ASSERT_GE(replayed, acked) << "lost an acked commit";
    ASSERT_LE(replayed, ops.size());

    // Clause 3: the corpus equals an oracle that ran exactly ops[0..R).
    storage::LiveDatabase oracle;
    {
      qv::WriterLock lock(oracle.mu());
      for (uint64_t i = 0; i < replayed; ++i) {
        Status applied =
            ops[i].remove ? oracle.RemoveDocument(ops[i].name)
                          : oracle.InsertDocument(ops[i].name, ops[i].xml);
        ASSERT_TRUE(applied.ok()) << applied.ToString();
      }
    }
    {
      qv::ReaderLock recovered_lock(recovered.mu());
      qv::ReaderLock oracle_lock(oracle.mu());
      ASSERT_EQ(recovered.document_names(), oracle.document_names());
      ASSERT_EQ(DumpIndexes(*recovered.indexes()),
                DumpIndexes(*oracle.indexes()))
          << "index state diverged from the replayed prefix";
    }
    ExpectSameSearchResults(recovered, oracle,
                            "trial " + std::to_string(trial));
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "crash-recovery divergence at trial " << trial
             << " (countdown " << countdown << ", acked " << acked
             << ", replayed " << replayed << ")";
    }
    std::filesystem::remove(wal_path);
    std::filesystem::remove(ack_path);
  }
  // Every countdown lies inside the crossing space, so every trial must
  // actually have crashed — the harness is not accidentally a no-op.
  EXPECT_EQ(crashed, kTrials);
}

}  // namespace
}  // namespace quickview
