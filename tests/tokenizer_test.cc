#include "xml/tokenizer.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace quickview::xml {
namespace {

TEST(TokenizerTest, LowercasesAndSplitsOnNonAlnum) {
  EXPECT_EQ(Tokenize("XML Web-Services, 2nd ed."),
            (std::vector<std::string>{"xml", "web", "services", "2nd",
                                      "ed"}));
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("---").empty());
}

TEST(TokenizerTest, DirectTermsIncludeTagName) {
  Node node;
  node.tag = "book-title";
  node.text = "XML search";
  EXPECT_EQ(DirectTerms(node),
            (std::vector<std::string>{"book", "title", "xml", "search"}));
}

TEST(TokenizerTest, SubtreeTermFrequencyCountsDescendants) {
  auto result = ParseXml(
      "<book><title>xml search</title>"
      "<review><content>about xml</content></review></book>");
  ASSERT_TRUE(result.ok());
  const Document& doc = **result;
  EXPECT_EQ(SubtreeTermFrequency(doc, doc.root(), "xml"), 2u);
  EXPECT_EQ(SubtreeTermFrequency(doc, doc.root(), "search"), 1u);
  EXPECT_EQ(SubtreeTermFrequency(doc, doc.root(), "book"), 1u);  // tag
  EXPECT_EQ(SubtreeTermFrequency(doc, doc.root(), "absent"), 0u);
}

}  // namespace
}  // namespace quickview::xml
