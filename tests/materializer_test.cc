// Materialization module tests: pruned result trees expand from document
// storage into exactly the base content; full results copy untouched.
#include "scoring/materializer.h"

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"

namespace quickview::scoring {
namespace {

class MaterializerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto books = xml::ParseXml(
        "<books><book><isbn>1</isbn>"
        "<title>XML <b>Web</b> Services</title></book></books>",
        1);
    ASSERT_TRUE(books.ok());
    db_.AddDocument("books.xml", *books);
    store_ = std::make_unique<storage::DocumentStore>(db_);
  }

  xml::Database db_;
  std::unique_ptr<storage::DocumentStore> store_;
};

TEST_F(MaterializerTest, PrunedNodeExpandsFromStorage) {
  // A result tree <hit><title/></hit> where title is a pruned stub.
  xml::Document result(100);
  xml::NodeIndex hit = result.CreateRoot("hit");
  xml::NodeIndex stub = result.AddChild(hit, "title");
  xml::NodeStats stats;
  stats.content_pruned = true;
  stats.source_doc = 1;
  stats.source_id = xml::DeweyId::Parse("1.1.2");
  result.node(stub).stats = stats;

  auto xml_text = MaterializeToXml(xquery::NodeHandle{&result, hit},
                                   store_.get());
  ASSERT_TRUE(xml_text.ok()) << xml_text.status();
  EXPECT_EQ(*xml_text,
            "<hit><title>XML Services<b>Web</b></title></hit>");
  EXPECT_EQ(store_->stats().fetch_calls, 1u);
}

TEST_F(MaterializerTest, PrunedNodeChildrenAreDropped) {
  // Structural children under a pruned node duplicate summarized content
  // and must not appear twice after expansion.
  xml::Document result(100);
  xml::NodeIndex root = result.CreateRoot("hit");
  xml::NodeIndex stub = result.AddChild(root, "book");
  xml::NodeStats stats;
  stats.content_pruned = true;
  stats.source_doc = 1;
  stats.source_id = xml::DeweyId::Parse("1.1");
  result.node(stub).stats = stats;
  result.AddChild(stub, "isbn");  // pruned-tree structural child

  auto xml_text =
      MaterializeToXml(xquery::NodeHandle{&result, root}, store_.get());
  ASSERT_TRUE(xml_text.ok());
  // Exactly one isbn — the one fetched from storage.
  size_t first = xml_text->find("<isbn>");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(xml_text->find("<isbn>", first + 1), std::string::npos);
}

TEST_F(MaterializerTest, FullResultCopiesWithoutStorageAccess) {
  xml::Document result(100);
  xml::NodeIndex root = result.CreateRoot("hit");
  result.node(root).text = "plain";
  result.AddChild(root, "child");
  auto xml_text =
      MaterializeToXml(xquery::NodeHandle{&result, root}, store_.get());
  ASSERT_TRUE(xml_text.ok());
  EXPECT_EQ(*xml_text, "<hit>plain<child></child></hit>");
  EXPECT_EQ(store_->stats().fetch_calls, 0u);
}

TEST_F(MaterializerTest, DanglingSourceIsReported) {
  xml::Document result(100);
  xml::NodeIndex root = result.CreateRoot("hit");
  xml::NodeStats stats;
  stats.content_pruned = true;
  stats.source_doc = 9;  // no such document
  stats.source_id = xml::DeweyId::Parse("9.1");
  result.node(root).stats = stats;
  auto xml_text =
      MaterializeToXml(xquery::NodeHandle{&result, root}, store_.get());
  ASSERT_FALSE(xml_text.ok());
  EXPECT_EQ(xml_text.status().code(), StatusCode::kNotFound);
}

TEST_F(MaterializerTest, MaterializeUnderExistingParent) {
  xml::Document result(100);
  xml::NodeIndex root = result.CreateRoot("src");
  result.node(root).text = "x";
  xml::Document target(1);
  xml::NodeIndex wrap = target.CreateRoot("wrap");
  ASSERT_TRUE(MaterializeResult(xquery::NodeHandle{&result, root},
                                store_.get(), &target, wrap)
                  .ok());
  EXPECT_EQ(xml::Serialize(target), "<wrap><src>x</src></wrap>");
}

}  // namespace
}  // namespace quickview::scoring
