// Randomized end-to-end parity (Theorem 4.1 under fuzz): across random
// book/review corpora and keyword subsets, the Efficient engine and the
// materialize-first Baseline must agree on every hit's XML, statistics,
// score and rank.
#include <random>

#include <gtest/gtest.h>

#include "baseline/naive_engine.h"
#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "storage/document_store.h"
#include "workload/bookrev_generator.h"

namespace quickview {
namespace {

class EngineParityProperty : public ::testing::TestWithParam<int> {};

TEST_P(EngineParityProperty, EfficientEqualsBaseline) {
  std::mt19937_64 rng(GetParam());
  workload::BookRevOptions gen;
  gen.seed = rng();
  gen.num_books = 10 + static_cast<int>(rng() % 60);
  gen.max_reviews_per_book = static_cast<int>(rng() % 5);
  auto db = workload::GenerateBookRevDatabase(gen);
  auto indexes = index::BuildDatabaseIndexes(*db);
  storage::DocumentStore store(*db);
  engine::ViewSearchEngine efficient(db.get(), indexes.get(), &store);
  baseline::NaiveEngine naive(db.get());

  const char* kTerms[] = {"xml",      "search", "web",     "database",
                          "services", "systems", "queries", "index",
                          "practice", "absent-term"};
  for (int round = 0; round < 6; ++round) {
    std::vector<std::string> keywords;
    size_t count = 1 + rng() % 3;
    for (size_t i = 0; i < count; ++i) keywords.push_back(kTerms[rng() % 10]);
    engine::SearchOptions options;
    options.top_k = 1 + rng() % 8;
    options.conjunctive = rng() % 2 == 0;

    engine::SearchRequest request;
    request.view = workload::BookRevView();
    request.keywords = keywords;
    request.options = options;
    auto eff = efficient.Execute(request);
    auto base = naive.SearchView(workload::BookRevView(), keywords, options);
    ASSERT_TRUE(eff.ok()) << eff.status();
    ASSERT_TRUE(base.ok()) << base.status();
    ASSERT_EQ(eff->hits.size(), base->hits.size());
    ASSERT_EQ(eff->stats.matching_results, base->stats.matching_results);
    ASSERT_EQ(eff->stats.view_results, base->stats.view_results);
    for (size_t i = 0; i < eff->hits.size(); ++i) {
      SCOPED_TRACE("round " + std::to_string(round) + " hit " +
                   std::to_string(i));
      EXPECT_EQ(eff->hits[i].tf, base->hits[i].tf);
      EXPECT_EQ(eff->hits[i].byte_length, base->hits[i].byte_length);
      EXPECT_DOUBLE_EQ(eff->hits[i].score, base->hits[i].score);
      EXPECT_EQ(eff->hits[i].xml, base->hits[i].xml);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineParityProperty,
                         ::testing::Range(100, 140));

}  // namespace
}  // namespace quickview
