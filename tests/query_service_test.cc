// QueryService: concurrent batches must produce results byte-identical to
// serial ViewSearchEngine runs, with the PDT cache counting hits and
// misses deterministically once warmed. Runs under the TSan CI leg.
#include "service/query_service.h"

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "common/thread_pool.h"
#include "storage/document_store.h"
#include "workload/bookrev_generator.h"

namespace quickview::service {
namespace {

class QueryServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = workload::GenerateBookRevDatabase(workload::BookRevOptions{});
    indexes_ = index::BuildDatabaseIndexes(*db_);
    store_ = std::make_unique<storage::DocumentStore>(*db_);
    engine_ = std::make_unique<engine::ViewSearchEngine>(
        db_.get(), indexes_.get(), store_.get());
  }

  std::unique_ptr<QueryService> MakeService(int threads,
                                            size_t cache_capacity = 128,
                                            size_t cache_shards = 8) {
    QueryServiceOptions options;
    options.threads = threads;
    options.cache.capacity = cache_capacity;
    options.cache.shards = cache_shards;
    auto service = std::make_unique<QueryService>(db_.get(), indexes_.get(),
                                                  store_.get(), options);
    EXPECT_TRUE(
        service->RegisterView("bookrev", workload::BookRevView()).ok());
    return service;
  }

  static void ExpectSameResponse(const engine::SearchResponse& expected,
                                 const engine::SearchResponse& actual) {
    ASSERT_EQ(expected.hits.size(), actual.hits.size());
    for (size_t i = 0; i < expected.hits.size(); ++i) {
      EXPECT_EQ(expected.hits[i].xml, actual.hits[i].xml) << "hit " << i;
      EXPECT_EQ(expected.hits[i].score, actual.hits[i].score) << "hit " << i;
      EXPECT_EQ(expected.hits[i].tf, actual.hits[i].tf) << "hit " << i;
      EXPECT_EQ(expected.hits[i].byte_length, actual.hits[i].byte_length);
    }
    EXPECT_EQ(expected.stats.view_results, actual.stats.view_results);
    EXPECT_EQ(expected.stats.matching_results, actual.stats.matching_results);
    EXPECT_EQ(expected.stats.view_bytes, actual.stats.view_bytes);
    EXPECT_EQ(expected.stats.store_fetches, actual.stats.store_fetches);
    EXPECT_EQ(expected.stats.store_bytes, actual.stats.store_bytes);
    EXPECT_EQ(expected.stats.pdt.nodes_emitted, actual.stats.pdt.nodes_emitted);
    EXPECT_EQ(expected.stats.pdt.pdt_bytes, actual.stats.pdt.pdt_bytes);
  }

  std::shared_ptr<xml::Database> db_;
  std::unique_ptr<index::DatabaseIndexes> indexes_;
  std::unique_ptr<storage::DocumentStore> store_;
  std::unique_ptr<engine::ViewSearchEngine> engine_;
};

// Serial oracle: the same view + keywords through the engine's unified
// entry point (view TEXT at the engine boundary).
Result<engine::SearchResponse> ExecView(
    const engine::ViewSearchEngine& engine, const std::string& view,
    const std::vector<std::string>& keywords,
    engine::SearchOptions options = {}) {
  engine::SearchRequest request;
  request.view = view;
  request.keywords = keywords;
  request.options = options;
  return engine.Execute(request);
}

const std::vector<std::vector<std::string>>& KeywordSets() {
  static const auto* kSets = new std::vector<std::vector<std::string>>{
      {"xml", "search"}, {"database"}, {"web", "xml"},
      {"search"},        {"xml"},      {"database", "web"}};
  return *kSets;
}

TEST_F(QueryServiceTest, ConcurrentIdenticalBatchMatchesSerial) {
  auto service = MakeService(/*threads=*/4);
  BatchQuery query{"bookrev", {"xml", "search"}, engine::SearchOptions{}};
  auto expected = ExecView(*engine_, workload::BookRevView(),
                           query.keywords, query.options);
  ASSERT_TRUE(expected.ok());
  ASSERT_FALSE(expected->hits.empty());

  // Warm the cache with one serial call so the batch counters below are
  // deterministic (no warm-up race between workers).
  ASSERT_TRUE(service->SearchOne(query).ok());
  EXPECT_EQ(service->stats().cache.misses, 1u);

  constexpr size_t kBatch = 32;
  std::vector<BatchQuery> batch(kBatch, query);
  auto responses = service->SearchBatch(batch);
  ASSERT_EQ(responses.size(), kBatch);
  for (const auto& response : responses) {
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ExpectSameResponse(*expected, *response);
  }
  EXPECT_EQ(service->stats().cache.hits, kBatch);
  EXPECT_EQ(service->stats().cache.misses, 1u);
  EXPECT_EQ(service->stats().queries, kBatch + 1);
}

TEST_F(QueryServiceTest, ConcurrentDistinctBatchMatchesSerial) {
  auto service = MakeService(/*threads=*/8);
  std::vector<BatchQuery> batch;
  std::vector<engine::SearchResponse> expected;
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (const auto& keywords : KeywordSets()) {
      BatchQuery query{"bookrev", keywords, engine::SearchOptions{}};
      query.options.conjunctive = keywords.size() % 2 == 1;
      auto serial = ExecView(*engine_, workload::BookRevView(), keywords,
                             query.options);
      ASSERT_TRUE(serial.ok());
      expected.push_back(std::move(*serial));
      batch.push_back(std::move(query));
    }
  }
  auto responses = service->SearchBatch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok()) << responses[i].status().ToString();
    ExpectSameResponse(expected[i], *responses[i]);
  }
  // Every distinct plan was built at least once; the second service pass
  // over the same batch is all hits.
  auto stats_after_first = service->stats().cache;
  EXPECT_GE(stats_after_first.misses, KeywordSets().size());
  auto second = service->SearchBatch(batch);
  for (const auto& response : second) ASSERT_TRUE(response.ok());
  auto stats_after_second = service->stats().cache;
  EXPECT_EQ(stats_after_second.misses, stats_after_first.misses);
  EXPECT_EQ(stats_after_second.hits, stats_after_first.hits + batch.size());
}

TEST_F(QueryServiceTest, CacheEvictsLruAtCapacity) {
  auto service = MakeService(/*threads=*/2, /*cache_capacity=*/2,
                             /*cache_shards=*/1);
  for (const auto& keywords : KeywordSets()) {
    BatchQuery query{"bookrev", keywords, engine::SearchOptions{}};
    ASSERT_TRUE(service->SearchOne(query).ok());
  }
  EXPECT_GE(service->stats().cache.evictions,
            KeywordSets().size() - 2);
  EXPECT_EQ(service->stats().cache.hits, 0u);
}

TEST_F(QueryServiceTest, ReplacingViewInvalidatesCachedPdts) {
  auto service = MakeService(/*threads=*/2);
  BatchQuery query{"bookrev", {"xml"}, engine::SearchOptions{}};
  auto before = service->SearchOne(query);
  ASSERT_TRUE(before.ok());

  // Re-register the same name with a selection-only view; cached PDTs for
  // the old text must not answer for the new one.
  const std::string new_view =
      "for $b in fn:doc(books.xml)/books//book return $b";
  ASSERT_TRUE(service->RegisterView("bookrev", new_view).ok());
  auto after = service->SearchOne(query);
  ASSERT_TRUE(after.ok());
  auto expected = ExecView(*engine_, new_view, query.keywords,
                           query.options);
  ASSERT_TRUE(expected.ok());
  ExpectSameResponse(*expected, *after);
  EXPECT_NE(before->stats.view_results, after->stats.view_results);
}

TEST_F(QueryServiceTest, SameSignatureViewsNeverCrossHit) {
  // Two views with IDENTICAL text produce identical plan signatures;
  // only the view-name half of the cache key separates their entries.
  // Updating one must invalidate its entries alone — the sibling keeps
  // hitting its own (still correct) PDTs, and neither ever serves the
  // other's.
  auto service = MakeService(/*threads=*/1);
  ASSERT_TRUE(service->RegisterView("alpha", workload::BookRevView()).ok());
  ASSERT_TRUE(service->RegisterView("beta", workload::BookRevView()).ok());
  BatchQuery alpha{"alpha", {"xml"}, engine::SearchOptions{}};
  BatchQuery beta{"beta", {"xml"}, engine::SearchOptions{}};

  auto alpha_before = service->SearchOne(alpha);
  ASSERT_TRUE(alpha_before.ok());
  auto beta_before = service->SearchOne(beta);
  ASSERT_TRUE(beta_before.ok());
  // Same text, same plan — but distinct cache entries (2 misses).
  EXPECT_EQ(service->stats().cache.misses, 2u);
  ExpectSameResponse(*alpha_before, *beta_before);

  // Update beta to a different view; alpha's cached entry must survive
  // AND keep answering with the old (still registered) text.
  const std::string new_view =
      "for $b in fn:doc(books.xml)/books//book return $b";
  ASSERT_TRUE(service->RegisterView("beta", new_view).ok());
  auto alpha_after = service->SearchOne(alpha);
  ASSERT_TRUE(alpha_after.ok());
  EXPECT_EQ(service->stats().cache.misses, 2u);  // alpha: cache hit
  ExpectSameResponse(*alpha_before, *alpha_after);

  auto beta_after = service->SearchOne(beta);
  ASSERT_TRUE(beta_after.ok());
  EXPECT_EQ(service->stats().cache.misses, 3u);  // beta: rebuilt
  auto expected = ExecView(*engine_, new_view, beta.keywords, beta.options);
  ASSERT_TRUE(expected.ok());
  ExpectSameResponse(*expected, *beta_after);
  EXPECT_NE(beta_after->stats.view_results, alpha_after->stats.view_results);
}

TEST_F(QueryServiceTest, UnknownViewIsPerSlotError) {
  auto service = MakeService(/*threads=*/2);
  std::vector<BatchQuery> batch{
      BatchQuery{"bookrev", {"xml"}, engine::SearchOptions{}},
      BatchQuery{"nope", {"xml"}, engine::SearchOptions{}}};
  auto responses = service->SearchBatch(batch);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(responses[0].ok());
  EXPECT_FALSE(responses[1].ok());
  EXPECT_EQ(responses[1].status().code(), StatusCode::kNotFound);
}

TEST_F(QueryServiceTest, RegisterRejectsUnparsableView) {
  auto service = MakeService(/*threads=*/1);
  EXPECT_FALSE(service->RegisterView("bad", "for $x in ((((").ok());
}

TEST_F(QueryServiceTest, OpenCursorSurvivesCacheEviction) {
  // A 2-entry single-shard cache: the queries issued while the cursor is
  // half-drained are guaranteed to evict its PreparedQuery entry. The
  // cursor co-owns the bundle, so its remaining pages must still match a
  // serial engine run.
  auto service = MakeService(/*threads=*/2, /*cache_capacity=*/2,
                             /*cache_shards=*/1);
  BatchQuery query{"bookrev", {"xml", "search"}, engine::SearchOptions{}};
  query.options.conjunctive = false;
  auto expected = ExecView(*engine_, workload::BookRevView(),
                           query.keywords, query.options);
  ASSERT_TRUE(expected.ok());
  ASSERT_GE(expected->hits.size(), 4u);

  auto cursor = service->OpenSearch(query);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  auto first = (*cursor)->FetchNext(2);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  uint64_t evictions_before = service->stats().cache.evictions;
  for (const auto& keywords : KeywordSets()) {
    ASSERT_TRUE(
        service->SearchOne(BatchQuery{"bookrev", keywords,
                                      engine::SearchOptions{}})
            .ok());
  }
  EXPECT_GT(service->stats().cache.evictions, evictions_before);

  auto rest = (*cursor)->FetchNext((*cursor)->pending());
  ASSERT_TRUE(rest.ok()) << rest.status().ToString();
  std::vector<engine::SearchHit> collected = std::move(*first);
  for (engine::SearchHit& hit : *rest) collected.push_back(std::move(hit));
  ASSERT_EQ(collected.size(), expected->hits.size());
  for (size_t i = 0; i < collected.size(); ++i) {
    EXPECT_EQ(collected[i].xml, expected->hits[i].xml) << "hit " << i;
    EXPECT_EQ(collected[i].score, expected->hits[i].score) << "hit " << i;
  }
}

TEST_F(QueryServiceTest, OpenCursorSurvivesViewReplacement) {
  auto service = MakeService(/*threads=*/2);
  BatchQuery query{"bookrev", {"xml"}, engine::SearchOptions{}};
  auto expected = ExecView(*engine_, workload::BookRevView(),
                           query.keywords, query.options);
  ASSERT_TRUE(expected.ok());

  auto cursor = service->OpenSearch(query);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  // Replace the view mid-cursor: the version bump orphans the cached
  // entry, but the open cursor keeps answering for the text it was
  // opened against.
  ASSERT_TRUE(service
                  ->RegisterView(
                      "bookrev",
                      "for $b in fn:doc(books.xml)/books//book return $b")
                  .ok());
  auto hits = (*cursor)->FetchNext((*cursor)->pending());
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_EQ(hits->size(), expected->hits.size());
  for (size_t i = 0; i < hits->size(); ++i) {
    EXPECT_EQ((*hits)[i].xml, expected->hits[i].xml) << "hit " << i;
  }
}

TEST_F(QueryServiceTest, OpenSearchValidatesAtTheBoundary) {
  auto service = MakeService(/*threads=*/1);
  BatchQuery no_keywords{"bookrev", {}, engine::SearchOptions{}};
  auto cursor = service->OpenSearch(no_keywords);
  ASSERT_FALSE(cursor.ok());
  EXPECT_EQ(cursor.status().code(), StatusCode::kInvalidArgument);

  BatchQuery zero_k{"bookrev", {"xml"}, engine::SearchOptions{}};
  zero_k.options.top_k = 0;
  auto response = service->SearchOne(zero_k);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryServiceTest, RejectsQuoteBearingKeyword) {
  // A quote would escape the single-quoted ftcontains literal and
  // rewrite the composed query; the service must refuse it up front.
  auto service = MakeService(/*threads=*/1);
  BatchQuery query{"bookrev",
                   {"x') return $qv"},
                   engine::SearchOptions{}};
  auto response = service->SearchOne(query);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, DrainFromEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Drain();
  ThreadPool clamped(0);
  EXPECT_EQ(clamped.thread_count(), 1);
}

}  // namespace
}  // namespace quickview::service
