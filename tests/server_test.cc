// Server: the loopback differential — every response crossing the
// socket must be byte-identical (modulo wall-clock timings) to the same
// query against an in-process QueryService, including typed errors;
// cursors die with their connection; a saturated worker pool sheds with
// kResourceExhausted immediately; expired deadlines cross the wire as
// kDeadlineExceeded. Runs under the TSan CI leg.
#include "server/server.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "server/client.h"
#include "server/protocol.h"
#include "service/query_service.h"
#include "storage/document_store.h"
#include "storage/live_database.h"
#include "workload/bookrev_generator.h"

namespace quickview::server {
namespace {

using std::chrono::milliseconds;

/// All 64 ordered non-empty keyword subsets of the demo corpus' planted
/// terms — pairwise-distinct plan signatures, so both services' caches
/// see the identical miss/hit sequence (bench_throughput's batch idiom).
const std::vector<std::vector<std::string>>& MixedKeywordSets() {
  static const auto* kSets = [] {
    const std::vector<std::string> terms{"xml", "search", "web", "database"};
    auto* sets = new std::vector<std::vector<std::string>>();
    for (size_t a = 0; a < terms.size(); ++a) {
      sets->push_back({terms[a]});
      for (size_t b = 0; b < terms.size(); ++b) {
        if (b == a) continue;
        sets->push_back({terms[a], terms[b]});
        for (size_t c = 0; c < terms.size(); ++c) {
          if (c == a || c == b) continue;
          sets->push_back({terms[a], terms[b], terms[c]});
          for (size_t d = 0; d < terms.size(); ++d) {
            if (d == a || d == b || d == c) continue;
            sets->push_back({terms[a], terms[b], terms[c], terms[d]});
          }
        }
      }
    }
    return sets;
  }();
  return *kSets;
}

/// The byte-parity canonical form: timings are wall-clock noise, all
/// else must match bit for bit (scores cross as IEEE-754 bit patterns).
std::string CanonicalBytes(engine::SearchResponse resp) {
  resp.timings = engine::ModuleTimings{};
  std::string encoded;
  Encode(resp, &encoded);
  return encoded;
}

/// Hits-only canonical form, for comparing a paged drain to a one-shot
/// response.
std::string HitBytes(std::vector<engine::SearchHit> hits) {
  engine::SearchResponse resp;
  resp.hits = std::move(hits);
  return CanonicalBytes(std::move(resp));
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = workload::GenerateBookRevDatabase(workload::BookRevOptions{});
    indexes_ = index::BuildDatabaseIndexes(*db_);
    store_ = std::make_unique<storage::DocumentStore>(*db_);
  }

  std::unique_ptr<service::QueryService> MakeService() {
    auto service = std::make_unique<service::QueryService>(
        db_.get(), indexes_.get(), store_.get());
    Status registered =
        service->RegisterView("default", workload::BookRevView());
    EXPECT_TRUE(registered.ok()) << registered.ToString();
    return service;
  }

  /// Starts a server over a fresh service; `remote_service_` keeps it
  /// alive for the test body.
  std::unique_ptr<Server> StartServer(ServerOptions options = {}) {
    remote_service_ = MakeService();
    auto server = std::make_unique<Server>(remote_service_.get(), options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return server;
  }

  Client ConnectTo(const Server& server) {
    Client client;
    Status connected = client.Connect("127.0.0.1", server.port());
    EXPECT_TRUE(connected.ok()) << connected.ToString();
    return client;
  }

  static service::BatchQuery ToQuery(const SearchRpcRequest& req) {
    service::BatchQuery query;
    query.view = req.view;
    query.keywords = req.keywords;
    query.options.top_k = req.top_k;
    query.options.conjunctive = req.conjunctive;
    return query;
  }

  std::shared_ptr<xml::Database> db_;
  std::unique_ptr<index::DatabaseIndexes> indexes_;
  std::unique_ptr<storage::DocumentStore> store_;
  std::unique_ptr<service::QueryService> remote_service_;
};

TEST_F(ServerTest, LoopbackByteParityOnMixedWorkload) {
  auto server = StartServer();
  auto local = MakeService();
  Client client = ConnectTo(*server);

  const auto& sets = MixedKeywordSets();
  ASSERT_GE(sets.size(), 64u);
  for (size_t i = 0; i < sets.size(); ++i) {
    SearchRpcRequest request;
    request.view = "default";
    request.keywords = sets[i];
    request.top_k = 10;
    request.conjunctive = false;
    auto expected = local->SearchOne(ToQuery(request));
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    if (i % 4 == 3) {
      // Paged drain: OpenCursor + FetchNext pages must reassemble the
      // exact hit list of the one-shot response.
      auto opened = client.OpenCursor(request);
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      EXPECT_EQ(opened->matching, expected->stats.matching_results);
      std::vector<engine::SearchHit> hits;
      for (;;) {
        auto page = client.FetchNext(opened->cursor_id, 3);
        ASSERT_TRUE(page.ok()) << page.status().ToString();
        for (auto& hit : page->hits) hits.push_back(std::move(hit));
        if (page->done || page->hits.empty()) break;
      }
      EXPECT_EQ(HitBytes(std::move(hits)), HitBytes(expected->hits))
          << "paged set " << i;
      Status closed = client.CloseCursor(opened->cursor_id);
      EXPECT_TRUE(closed.ok()) << closed.ToString();
    } else {
      auto response = client.Search(request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_EQ(CanonicalBytes(std::move(response).value()),
                CanonicalBytes(std::move(expected).value()))
          << "set " << i;
    }
  }
  // Both caches saw the identical sequence.
  StatsResponse remote_stats = server->SnapshotStats();
  service::QueryService::Stats local_stats = local->stats();
  EXPECT_EQ(remote_stats.queries, local_stats.queries);
  EXPECT_EQ(remote_stats.cache_hits, local_stats.cache.hits);
  EXPECT_EQ(remote_stats.cache_misses, local_stats.cache.misses);
  EXPECT_EQ(remote_stats.protocol_errors, 0u);
}

TEST_F(ServerTest, ErrorStatusParityOnTheWire) {
  auto server = StartServer();
  auto local = MakeService();
  Client client = ConnectTo(*server);

  // Unknown view, a keyword the boundary validation rejects (a single
  // quote would break out of the spliced XQuery literal), and an empty
  // keyword list: the wire must carry the SAME typed status + message
  // as the in-process call.
  SearchRpcRequest unknown;
  unknown.view = "no-such-view";
  unknown.keywords = {"xml"};
  SearchRpcRequest bad_keyword;
  bad_keyword.view = "default";
  bad_keyword.keywords = {"xml'quote"};
  SearchRpcRequest no_keywords;
  no_keywords.view = "default";
  for (const SearchRpcRequest& request : {unknown, bad_keyword,
                                          no_keywords}) {
    auto remote = client.Search(request);
    auto expected = local->SearchOne(ToQuery(request));
    ASSERT_FALSE(remote.ok());
    ASSERT_FALSE(expected.ok());
    EXPECT_EQ(remote.status().code(), expected.status().code());
    EXPECT_EQ(remote.status().message(), expected.status().message());
  }

  // Mutations against a static service: InvalidArgument, both ways.
  Status remote_insert = client.Insert("new.xml", "<a/>");
  Status local_insert = local->InsertDocument("new.xml", "<a/>");
  ASSERT_FALSE(remote_insert.ok());
  EXPECT_EQ(remote_insert.code(), local_insert.code());
  EXPECT_EQ(remote_insert.message(), local_insert.message());

  // Unknown cursor id: typed NotFound.
  auto fetched = client.FetchNext(12345, 3);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kNotFound);
  Status closed = client.CloseCursor(12345);
  EXPECT_EQ(closed.code(), StatusCode::kNotFound);
}

TEST_F(ServerTest, RegisterViewOverTheWire) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  Status registered =
      client.RegisterView("second", workload::BookRevView());
  ASSERT_TRUE(registered.ok()) << registered.ToString();
  SearchRpcRequest request;
  request.view = "second";
  request.keywords = {"xml", "search"};
  auto response = client.Search(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_GT(response->hits.size(), 0u);
}

TEST_F(ServerTest, DisconnectDestroysTheConnectionsCursors) {
  auto server = StartServer();
  {
    Client client = ConnectTo(*server);
    SearchRpcRequest request;
    request.view = "default";
    request.keywords = {"xml", "search"};
    for (int i = 0; i < 3; ++i) {
      auto opened = client.OpenCursor(request);
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    }
    auto page_owner = client.OpenCursor(request);
    ASSERT_TRUE(page_owner.ok());
    auto page = client.FetchNext(page_owner->cursor_id, 2);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    EXPECT_EQ(server->SnapshotStats().open_cursors, 4u);
    client.Close();
  }
  // The reader notices the disconnect and sweeps; poll until it has.
  for (int i = 0; i < 200; ++i) {
    if (server->SnapshotStats().open_cursors == 0) break;
    std::this_thread::sleep_for(milliseconds(10));
  }
  EXPECT_EQ(server->SnapshotStats().open_cursors, 0u);
}

TEST_F(ServerTest, FullAdmissionQueueShedsImmediately) {
  ServerOptions options;
  options.worker_threads = 1;
  options.admission_queue_limit = 2;
  auto server = StartServer(options);
  // Stall the single worker so admitted requests stay queued.
  auto release = std::make_shared<std::atomic<bool>>(false);
  server->worker_pool()->Submit([release] {
    while (!release->load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(milliseconds(1));
    }
  });

  Client client = ConnectTo(*server);
  ASSERT_TRUE(client.SetRecvTimeout(milliseconds(5000)).ok());
  SearchRpcRequest request;
  request.view = "default";
  request.keywords = {"xml"};
  std::string payload;
  Encode(request, &payload);
  // Fill the gate (ids 1, 2), then overflow it (id 3). The shed reply
  // must arrive while the admitted requests are still stuck behind the
  // stalled pool — i.e. well inside the client's 5 s read deadline.
  for (uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(client.SendRequest(Opcode::kSearch, id, payload).ok());
  }
  auto frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->request_id, 3u);
  ASSERT_NE(frame->flags & kFlagError, 0);
  Status shed;
  ASSERT_TRUE(DecodeStatusPayload(frame->payload, &shed).ok());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.message().find("admission queue full"), std::string::npos);
  StatsResponse mid = server->SnapshotStats();
  EXPECT_EQ(mid.shed, 1u);
  // Shedding is attributed to the opcode that was shed.
  EXPECT_EQ(mid.latency[static_cast<size_t>(Opcode::kSearch)].shed, 1u);
  EXPECT_EQ(mid.latency[static_cast<size_t>(Opcode::kStats)].shed, 0u);

  // Release the pool: the two admitted requests complete normally.
  release->store(true, std::memory_order_release);
  for (uint64_t expected_id : {uint64_t{1}, uint64_t{2}}) {
    auto reply = client.ReadFrame();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->request_id, expected_id);
    EXPECT_EQ(reply->flags & kFlagError, 0);
  }
  EXPECT_EQ(server->SnapshotStats().admitted, 2u);
}

TEST_F(ServerTest, ExpiredDeadlineCrossesTheWireTyped) {
  ServerOptions options;
  options.worker_threads = 1;
  auto server = StartServer(options);
  auto release = std::make_shared<std::atomic<bool>>(false);
  server->worker_pool()->Submit([release] {
    while (!release->load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(milliseconds(1));
    }
  });

  Client client = ConnectTo(*server);
  ASSERT_TRUE(client.SetRecvTimeout(milliseconds(5000)).ok());
  SearchRpcRequest request;
  request.view = "default";
  request.keywords = {"xml"};
  request.deadline_ms = 50;
  std::string payload;
  Encode(request, &payload);
  ASSERT_TRUE(client.SendRequest(Opcode::kSearch, 1, payload).ok());
  // Hold the pool past the deadline, then let the worker find the
  // request already expired.
  std::this_thread::sleep_for(milliseconds(150));
  release->store(true, std::memory_order_release);

  auto frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_NE(frame->flags & kFlagError, 0);
  Status expired;
  ASSERT_TRUE(DecodeStatusPayload(frame->payload, &expired).ok());
  EXPECT_EQ(expired.code(), StatusCode::kDeadlineExceeded);
  StatsResponse stats = server->SnapshotStats();
  EXPECT_EQ(stats.deadline_rejected, 1u);
  EXPECT_EQ(
      stats.latency[static_cast<size_t>(Opcode::kSearch)].deadline_rejected,
      1u);
}

TEST_F(ServerTest, ConnectionCapRejectsWithTypedError) {
  ServerOptions options;
  options.max_connections = 1;
  auto server = StartServer(options);
  Client first = ConnectTo(*server);
  auto stats = first.Stats();  // round-trip: the accept is processed
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  Client second;
  ASSERT_TRUE(second.Connect("127.0.0.1", server->port()).ok());
  ASSERT_TRUE(second.SetRecvTimeout(milliseconds(5000)).ok());
  // The server sends one unsolicited error frame and closes; any RPC on
  // this connection surfaces the typed rejection.
  auto rejected = second.Stats();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  // The first connection is unaffected.
  auto again = first.Stats();
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->connections_rejected, 1u);
}

TEST_F(ServerTest, LiveBackendMutatesOverTheWire) {
  auto live_db =
      workload::GenerateBookRevDatabase(workload::BookRevOptions{});
  storage::LiveDatabase live(live_db);
  service::QueryService service(&live);
  Status registered =
      service.RegisterView("default", workload::BookRevView());
  ASSERT_TRUE(registered.ok());
  Server server(&service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  Status inserted = client.Insert(
      "extra.xml", "<books><book><title>networked xml serving</title>"
                   "</book></books>");
  EXPECT_TRUE(inserted.ok()) << inserted.ToString();
  Status removed = client.Remove("extra.xml");
  EXPECT_TRUE(removed.ok()) << removed.ToString();
  Status missing = client.Remove("extra.xml");
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->documents_inserted, 1u);
  EXPECT_EQ(stats->documents_removed, 1u);
  server.Stop();
}

TEST_F(ServerTest, TracedSearchReturnsCompleteSpanTree) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  SearchRpcRequest request;
  request.view = "default";
  request.keywords = {"xml", "search"};
  std::string trace;
  auto response = client.Search(request, &trace);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->hits.empty());
  // The span tree crosses the wire and covers the whole pipeline: plan +
  // PDT build + evaluation under the shard span, then merge, then hit
  // materialization (kSearch drains its cursor server-side).
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.rfind("trace ", 0), 0u) << trace;
  for (const char* span :
       {"\n  shard shard=0", "\n    plan", "\n    build_pdts",
        "\n    evaluate", "\n  merge", "\n  materialize"}) {
    EXPECT_NE(trace.find(span), std::string::npos) << span << "\n" << trace;
  }
  // The same request untraced still answers with a plain payload.
  auto plain = client.Search(request);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
}

TEST_F(ServerTest, TracedCursorKeepsAttributingAcrossFetches) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  SearchRpcRequest request;
  request.view = "default";
  request.keywords = {"xml"};
  request.top_k = 10;
  std::string open_trace;
  auto opened = client.OpenCursor(request, &open_trace);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  // At open time nothing has been materialized yet.
  ASSERT_FALSE(open_trace.empty());
  EXPECT_NE(open_trace.find("\n  shard shard=0"), std::string::npos);
  EXPECT_EQ(open_trace.find("materialize"), std::string::npos) << open_trace;
  // The cursor keeps its trace: a traced fetch returns the grown tree.
  std::string fetch_trace;
  auto page = client.FetchNext(opened->cursor_id, 5, &fetch_trace);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_NE(fetch_trace.find("\n  materialize"), std::string::npos)
      << fetch_trace;
  EXPECT_TRUE(client.CloseCursor(opened->cursor_id).ok());
}

TEST_F(ServerTest, StatsTextIsPrometheusExposition) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  SearchRpcRequest request;
  request.view = "default";
  request.keywords = {"xml"};
  ASSERT_TRUE(client.Search(request).ok());
  auto text = client.StatsText();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // One registry spans every layer: server frames and per-opcode latency
  // histograms next to the service, cache and buffer-pool series.
  for (const char* needle :
       {"# TYPE qv_server_frames_received_total counter",
        "# TYPE qv_server_latency_us histogram", "opcode=\"Search\"",
        "le=\"+Inf\"", "qv_service_queries_total 1",
        "qv_threadpool_tasks_submitted_total{pool=\"rpc\"}",
        "qv_pdtcache_misses_total 1"}) {
    EXPECT_NE(text->find(needle), std::string::npos) << needle << "\n" << *text;
  }
  // The binary format is still the default on an empty payload.
  auto binary = client.Stats();
  ASSERT_TRUE(binary.ok()) << binary.status().ToString();
  EXPECT_EQ(binary->queries, 1u);
}

TEST_F(ServerTest, SlowQueryLogSurfacesWorstRequests) {
  ServerOptions options;
  options.trace_all = true;
  options.slow_query_capacity = 2;
  auto server = StartServer(options);
  Client client = ConnectTo(*server);
  SearchRpcRequest request;
  request.view = "default";
  request.keywords = {"xml"};
  for (int i = 0; i < 5; ++i) {
    auto response = client.Search(request);  // never sets kFlagTrace
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }
  StatsResponse stats = server->SnapshotStats();
  ASSERT_EQ(stats.slow_queries.size(), 2u);  // worst-K, not last-K
  EXPECT_GE(stats.slow_queries[0].latency_us, stats.slow_queries[1].latency_us);
  for (const SlowQueryEntry& entry : stats.slow_queries) {
    EXPECT_EQ(entry.opcode, static_cast<uint8_t>(Opcode::kSearch));
    EXPECT_NE(entry.description.find("search view=default keywords=xml"),
              std::string::npos)
        << entry.description;
    // trace_all traced the request server-side even though the client
    // never asked, so the log can explain the latency.
    EXPECT_NE(entry.trace.find("shard"), std::string::npos) << entry.trace;
  }
  // The log crosses the wire in the binary Stats payload.
  auto wire = client.Stats();
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  ASSERT_EQ(wire->slow_queries.size(), 2u);
  EXPECT_EQ(wire->slow_queries[0].opcode,
            static_cast<uint8_t>(Opcode::kSearch));
}

TEST_F(ServerTest, StopWithConnectedClientsIsClean) {
  auto server = StartServer();
  Client client = ConnectTo(*server);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  server->Stop();  // must join readers + drain workers without hanging
  // The client's next read sees the shutdown, not a hang.
  ASSERT_TRUE(client.SetRecvTimeout(milliseconds(5000)).ok());
  auto after = client.Stats();
  EXPECT_FALSE(after.ok());
}

}  // namespace
}  // namespace quickview::server
