// Unit proof of the write-ahead log's three contracts (pagestore/wal.h):
// framing round-trips, recovery classifies damage by position — EVERY
// truncation byte-offset of a torn tail recovers the committed prefix,
// while mid-log corruption and sequence breaks stay loudly fatal — and
// group commit batches concurrent appenders into fewer fdatasync calls
// than records while applying their callbacks in sequence order.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/sync.h"
#include "pagestore/delta_log.h"
#include "pagestore/wal.h"

namespace quickview::pagestore {
namespace {

std::string TestPath(const std::string& leaf) {
  return (std::filesystem::path(::testing::TempDir()) / leaf).string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

std::unique_ptr<Wal> MustOpen(const std::string& path,
                              const WalOptions& options = {}) {
  auto wal = Wal::Open(path, options);
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  return std::move(*wal);
}

TEST(WalTest, AppendReplayRoundTrip) {
  const std::string path = TestPath("wal_roundtrip.wal");
  std::filesystem::remove(path);
  const std::vector<std::string> payloads = {"alpha", "bravo bravo",
                                             std::string(1000, 'c')};
  {
    std::unique_ptr<Wal> wal = MustOpen(path);
    EXPECT_TRUE(wal->replay().payloads.empty());
    for (size_t i = 0; i < payloads.size(); ++i) {
      auto seq = wal->Append(payloads[i]);
      ASSERT_TRUE(seq.ok()) << seq.status().ToString();
      EXPECT_EQ(*seq, i + 1);
    }
    EXPECT_EQ(wal->appended_records(), payloads.size());
    EXPECT_EQ(wal->sync_calls(), payloads.size());  // single writer
  }
  auto replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->payloads, payloads);
  EXPECT_EQ(replay->last_seq, payloads.size());
  EXPECT_FALSE(replay->tail_truncated);

  // Reopen for writing: recovery sees the same records, sequence numbers
  // continue where the last instance stopped.
  std::unique_ptr<Wal> wal = MustOpen(path);
  EXPECT_EQ(wal->replay().payloads, payloads);
  auto seq = wal->Append("delta");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, payloads.size() + 1);
}

TEST(WalTest, RejectsEmptyPayloadAndMissingFileIsEmpty) {
  const std::string path = TestPath("wal_empty.wal");
  std::filesystem::remove(path);
  auto replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->payloads.empty());
  std::unique_ptr<Wal> wal = MustOpen(path);
  EXPECT_FALSE(wal->Append("").ok());
}

// The satellite-2 sweep: a log truncated at EVERY byte offset — the
// file a crash can leave behind at any point of any append — must
// recover exactly the records whose frames are complete, never
// ParseError, and the write path must truncate the tail and continue.
TEST(WalTest, EveryTruncationOffsetRecoversCommittedPrefix) {
  const std::string full_path = TestPath("wal_trunc_full.wal");
  std::filesystem::remove(full_path);
  const std::vector<std::string> payloads = {"first record", "2nd",
                                             "third record body"};
  // Record the byte boundary after the magic and after each frame.
  std::vector<size_t> boundaries;
  {
    std::unique_ptr<Wal> wal = MustOpen(full_path);
    boundaries.push_back(8);  // the magic goes out with the first commit
    for (const std::string& p : payloads) {
      ASSERT_TRUE(wal->Append(p).ok());
      boundaries.push_back(
          static_cast<size_t>(std::filesystem::file_size(full_path)));
    }
  }
  const std::string bytes = ReadFileBytes(full_path);
  ASSERT_EQ(bytes.size(), boundaries.back());

  const std::string cut_path = TestPath("wal_trunc_cut.wal");
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    SCOPED_TRACE("truncated at byte " + std::to_string(cut));
    WriteFileBytes(cut_path, bytes.substr(0, cut));
    // How many records fit entirely below the cut?
    size_t committed = 0;
    while (committed < payloads.size() && boundaries[committed + 1] <= cut) {
      ++committed;
    }
    // Read path: recover the prefix without touching the file.
    auto replay = ReplayWal(cut_path);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    ASSERT_EQ(replay->payloads.size(), committed);
    for (size_t i = 0; i < committed; ++i) {
      EXPECT_EQ(replay->payloads[i], payloads[i]);
    }
    EXPECT_EQ(replay->tail_truncated,
              cut != 0 && cut != boundaries[committed]);
    EXPECT_EQ(std::filesystem::file_size(cut_path), cut) << "read modified";
    // Write path: truncate the tail, then accept a new record with the
    // next sequence number after the survivors.
    std::unique_ptr<Wal> wal = MustOpen(cut_path);
    auto seq = wal->Append("appended after recovery");
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    EXPECT_EQ(*seq, committed + 1);
    auto healed = ReplayWal(cut_path);
    ASSERT_TRUE(healed.ok());
    ASSERT_EQ(healed->payloads.size(), committed + 1);
    EXPECT_EQ(healed->payloads.back(), "appended after recovery");
    EXPECT_FALSE(healed->tail_truncated);
  }
}

TEST(WalTest, MidLogChecksumCorruptionIsFatal) {
  const std::string path = TestPath("wal_midlog.wal");
  std::filesystem::remove(path);
  {
    std::unique_ptr<Wal> wal = MustOpen(path);
    ASSERT_TRUE(wal->Append("victim record").ok());
    ASSERT_TRUE(wal->Append("innocent successor").ok());
  }
  const std::string bytes = ReadFileBytes(path);
  // Flip every byte of the FIRST record except its length field (a
  // corrupt length makes the rest of the log unparseable — recovery
  // cannot even find the next frame, so it is classified as a tear).
  // Record 1 spans [8, 8+12+13+4); skip the 4 length bytes at [8, 12).
  const size_t frame_end = 8 + 12 + 13 + 4;
  for (size_t pos = 12; pos < frame_end; ++pos) {
    SCOPED_TRACE("corrupted byte " + std::to_string(pos));
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x20);
    WriteFileBytes(path, damaged);
    auto replay = ReplayWal(path);
    ASSERT_FALSE(replay.ok());
    EXPECT_EQ(replay.status().code(), StatusCode::kParseError);
    // The write path refuses too: no appending past unexplained damage.
    EXPECT_FALSE(Wal::Open(path).ok());
  }
}

TEST(WalTest, SequenceBreakIsFatalEvenAtTheTail) {
  const std::string path = TestPath("wal_seqbreak.wal");
  std::filesystem::remove(path);
  {
    std::unique_ptr<Wal> wal = MustOpen(path);
    ASSERT_TRUE(wal->Append("record one").ok());
    ASSERT_TRUE(wal->Append("record two").ok());
  }
  const std::string bytes = ReadFileBytes(path);
  const size_t frame1_end = 8 + 12 + 10 + 4;
  // Splice record 2 (seq=2, checksum intact) directly after the magic:
  // a checksum-valid record with the wrong sequence number was never
  // torn — it is corruption, fatal even with nothing following it.
  WriteFileBytes(path, bytes.substr(0, 8) + bytes.substr(frame1_end));
  auto replay = ReplayWal(path);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kParseError);
}

TEST(WalTest, BadMagicIsFatal) {
  const std::string path = TestPath("wal_magic.wal");
  WriteFileBytes(path, "NOTAWAL0 trailing bytes");
  EXPECT_FALSE(ReplayWal(path).ok());
  EXPECT_FALSE(Wal::Open(path).ok());
}

TEST(WalTest, GroupCommitBatchesConcurrentWriters) {
  const std::string path = TestPath("wal_group.wal");
  std::filesystem::remove(path);
  std::unique_ptr<Wal> wal = MustOpen(path);

  // Thread 0 becomes the commit-group leader and parks inside its apply
  // callback until the other writers have reached Append — so they all
  // queue behind it and get drained as ONE batch with one fdatasync.
  constexpr int kFollowers = 7;
  std::atomic<int> followers_arrived{0};
  std::thread leader([&] {
    auto seq = wal->Append("leader record", [&]() {
      while (followers_arrived.load() < kFollowers) {
        std::this_thread::yield();
      }
      // The arrival counter ticks just before each follower calls
      // Append; give them time to actually enqueue behind this commit.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      return Status::OK();
    });
    EXPECT_TRUE(seq.ok()) << seq.status().ToString();
  });
  std::vector<std::thread> followers;
  followers.reserve(kFollowers);
  for (int t = 0; t < kFollowers; ++t) {
    followers.emplace_back([&, t] {
      followers_arrived.fetch_add(1);
      auto seq = wal->Append("follower " + std::to_string(t));
      EXPECT_TRUE(seq.ok()) << seq.status().ToString();
    });
  }
  leader.join();
  for (std::thread& th : followers) th.join();

  constexpr uint64_t kTotal = 1 + kFollowers;
  EXPECT_EQ(wal->appended_records(), kTotal);
  // The whole point of group commit: fewer fsyncs than records. The
  // leader's own record costs one; the followers share batches (all in
  // one if none straggled), so well under one sync per record.
  EXPECT_LT(wal->sync_calls(), kTotal);
  EXPECT_EQ(wal->sync_calls(), wal->commit_batches());
  // And the log itself holds every record exactly once, in sequence.
  auto replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->payloads.size(), kTotal);
  EXPECT_EQ(replay->last_seq, kTotal);
}

TEST(WalTest, ApplyCallbacksRunInSequenceOrder) {
  const std::string path = TestPath("wal_applyorder.wal");
  std::filesystem::remove(path);
  std::unique_ptr<Wal> wal = MustOpen(path);
  // Applies are globally serialized (one leader at a time, batches in
  // order, each batch applied in queue order), so the i-th apply overall
  // must belong to sequence number i — whatever the thread interleaving.
  std::atomic<uint64_t> applies{0};
  constexpr int kThreads = 6;
  constexpr int kPerThread = 30;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t my_apply_index = 0;
        auto seq = wal->Append(
            "p" + std::to_string(t) + "." + std::to_string(i), [&]() {
              my_apply_index = applies.fetch_add(1) + 1;
              return Status::OK();
            });
        EXPECT_TRUE(seq.ok()) << seq.status().ToString();
        if (seq.ok()) {
          EXPECT_EQ(*seq, my_apply_index);
        }
      }
    });
  }
  for (std::thread& th : writers) th.join();
  EXPECT_EQ(applies.load(), uint64_t{kThreads} * kPerThread);
  auto replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->last_seq, uint64_t{kThreads} * kPerThread);
}

TEST(WalTest, PerRecordModeSyncsEveryAppend) {
  const std::string path = TestPath("wal_per_record.wal");
  std::filesystem::remove(path);
  WalOptions options;
  options.group_commit = false;
  std::unique_ptr<Wal> wal = MustOpen(path, options);
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(wal->Append("r" + std::to_string(t * 10 + i)).ok());
      }
    });
  }
  for (std::thread& th : writers) th.join();
  // No batching: the regression guard for "appends must actually reach
  // the fdatasync syscall" — every committed record paid one sync.
  EXPECT_EQ(wal->appended_records(), 40u);
  EXPECT_EQ(wal->sync_calls(), 40u);
  auto replay = ReplayWal(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->last_seq, 40u);
}

TEST(WalTest, DeltaPayloadRoundTripsThroughTheLog) {
  const std::string pack = TestPath("wal_delta.qvpack");
  const std::string log = DeltaLogPath(pack);
  std::filesystem::remove(log);
  ASSERT_TRUE(PackAppend(pack, "a.xml", "<d><t>xml</t></d>").ok());
  ASSERT_TRUE(PackTombstone(pack, "a.xml").ok());
  auto records = ReadDeltaLog(pack);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_FALSE((*records)[0].tombstone);
  EXPECT_EQ((*records)[0].name, "a.xml");
  EXPECT_EQ((*records)[0].xml, "<d><t>xml</t></d>");
  EXPECT_TRUE((*records)[1].tombstone);
  EXPECT_EQ((*records)[1].name, "a.xml");
  EXPECT_TRUE((*records)[1].xml.empty());
}

}  // namespace
}  // namespace quickview::pagestore
