#include "xquery/evaluator.h"

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/parser.h"

namespace quickview::xquery {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto books = xml::ParseXml(
        "<books>"
        "<book><isbn>1</isbn><title>XML Web</title><year>2004</year></book>"
        "<book><isbn>2</isbn><title>AI</title><year>1992</year></book>"
        "<book><isbn>3</isbn><title>DB</title><year>1999</year></book>"
        "</books>",
        1);
    auto reviews = xml::ParseXml(
        "<reviews>"
        "<review><isbn>1</isbn><content>great xml</content></review>"
        "<review><isbn>1</isbn><content>easy read</content></review>"
        "<review><isbn>3</isbn><content>solid</content></review>"
        "</reviews>",
        2);
    ASSERT_TRUE(books.ok() && reviews.ok());
    db_.AddDocument("books.xml", *books);
    db_.AddDocument("reviews.xml", *reviews);
  }

  /// Evaluates and serializes every node item.
  std::vector<std::string> EvalToXml(const std::string& query_text) {
    auto query = ParseQuery(query_text);
    EXPECT_TRUE(query.ok()) << query.status();
    if (!query.ok()) return {};
    Evaluator evaluator(&db_);
    auto result = evaluator.Evaluate(*query);
    EXPECT_TRUE(result.ok()) << result.status();
    if (!result.ok()) return {};
    std::vector<std::string> out;
    for (const Item& item : *result) {
      if (const NodeHandle* h = std::get_if<NodeHandle>(&item)) {
        out.push_back(xml::Serialize(*h->doc, h->index));
      } else {
        out.push_back(AtomicValue(item));
      }
    }
    return out;
  }

  xml::Database db_;
};

TEST_F(EvaluatorTest, ChildAndDescendantSteps) {
  EXPECT_EQ(EvalToXml("fn:doc(books.xml)/books/book/isbn").size(), 3u);
  EXPECT_EQ(EvalToXml("fn:doc(books.xml)/books//isbn").size(), 3u);
  EXPECT_EQ(EvalToXml("fn:doc(books.xml)//title").size(), 3u);
  EXPECT_TRUE(EvalToXml("fn:doc(books.xml)/title").empty());
}

TEST_F(EvaluatorTest, PathPredicateNumericComparison) {
  auto out = EvalToXml("fn:doc(books.xml)//book[./year > 1995]/title");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "<title>XML Web</title>");
  EXPECT_EQ(out[1], "<title>DB</title>");
}

TEST_F(EvaluatorTest, ExistencePredicate) {
  EXPECT_EQ(EvalToXml("fn:doc(books.xml)//book[./isbn]").size(), 3u);
  EXPECT_TRUE(EvalToXml("fn:doc(books.xml)//book[./missing]").empty());
}

TEST_F(EvaluatorTest, FlworWhereAndReturn) {
  auto out = EvalToXml(
      "for $b in fn:doc(books.xml)//book where $b/year > 2000 "
      "return $b/title");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "<title>XML Web</title>");
}

TEST_F(EvaluatorTest, ValueJoinAcrossDocuments) {
  auto out = EvalToXml(
      "for $b in fn:doc(books.xml)//book "
      "for $r in fn:doc(reviews.xml)//review "
      "where $r/isbn = $b/isbn return $r/content");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "<content>great xml</content>");
  EXPECT_EQ(out[2], "<content>solid</content>");
}

TEST_F(EvaluatorTest, ElementConstructorCopiesSubtrees) {
  auto out = EvalToXml(
      "for $b in fn:doc(books.xml)//book[./year > 2000] "
      "return <res><t>{$b/title}</t></res>");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "<res><t><title>XML Web</title></t></res>");
}

TEST_F(EvaluatorTest, ConstructorJoinsAtomicValuesWithSpace) {
  auto out = EvalToXml("<r>{'a'}{'b'}</r>");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "<r>a b</r>");
}

TEST_F(EvaluatorTest, NestedFlworBuildsNestedResults) {
  auto out = EvalToXml(
      "for $b in fn:doc(books.xml)//book "
      "return <bk><t>{$b/title}</t>,"
      "{for $r in fn:doc(reviews.xml)//review "
      " where $r/isbn = $b/isbn return $r/content}</bk>");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0],
            "<bk><t><title>XML Web</title></t>"
            "<content>great xml</content><content>easy read</content></bk>");
  EXPECT_EQ(out[1], "<bk><t><title>AI</title></t></bk>");
}

TEST_F(EvaluatorTest, LetBindsWholeSequence) {
  auto out = EvalToXml(
      "let $ts := fn:doc(books.xml)//title return <all>{$ts}</all>");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0],
            "<all><title>XML Web</title><title>AI</title>"
            "<title>DB</title></all>");
}

TEST_F(EvaluatorTest, IfThenElse) {
  auto out = EvalToXml(
      "for $b in fn:doc(books.xml)//book "
      "return if $b/year > 2000 then $b/title else $b/isbn");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "<title>XML Web</title>");
  EXPECT_EQ(out[1], "<isbn>2</isbn>");
}

TEST_F(EvaluatorTest, UserFunctions) {
  auto out = EvalToXml(
      "declare function titles($b) { $b/title } "
      "for $b in fn:doc(books.xml)//book[./year > 2000] "
      "return titles($b)");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "<title>XML Web</title>");
}

TEST_F(EvaluatorTest, DocumentOverrideRedirects) {
  auto tiny = xml::ParseXml("<books><book><title>ONLY</title></book></books>",
                            1);
  ASSERT_TRUE(tiny.ok());
  auto query = ParseQuery("fn:doc(books.xml)//title");
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(&db_);
  evaluator.OverrideDocument("books.xml", tiny->get());
  auto result = evaluator.Evaluate(*query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
}

TEST_F(EvaluatorTest, Errors) {
  auto query = ParseQuery("fn:doc(missing.xml)//a");
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(&db_);
  EXPECT_EQ(evaluator.Evaluate(*query).status().code(),
            StatusCode::kEvalError);
  auto unbound = ParseQuery("$nope/title");
  ASSERT_TRUE(unbound.ok());
  EXPECT_EQ(Evaluator(&db_).Evaluate(*unbound).status().code(),
            StatusCode::kEvalError);
}

TEST_F(EvaluatorTest, DuplicateEliminationAndDocumentOrder) {
  // The same title reachable twice must appear once, in document order.
  auto out = EvalToXml("fn:doc(books.xml)/books//book//title");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "<title>XML Web</title>");
}

TEST_F(EvaluatorTest, EffectiveBooleanRules) {
  EXPECT_FALSE(EffectiveBoolean({}));
  EXPECT_FALSE(EffectiveBoolean({Item(false)}));
  EXPECT_TRUE(EffectiveBoolean({Item(true)}));
  EXPECT_TRUE(EffectiveBoolean({Item(std::string("x"))}));
}

}  // namespace
}  // namespace quickview::xquery
