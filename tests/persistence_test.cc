// Persistence round-trips: a database and its indices written to disk and
// loaded back must answer every query identically.
#include "storage/persistence.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "engine/view_search_engine.h"
#include "index/index_builder.h"
#include "storage/document_store.h"
#include "workload/bookrev_generator.h"
#include "xml/serializer.h"

namespace quickview::storage {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/qvdb_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    db_ = workload::GenerateBookRevDatabase(workload::BookRevOptions{});
    indexes_ = index::BuildDatabaseIndexes(*db_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::shared_ptr<xml::Database> db_;
  std::unique_ptr<index::DatabaseIndexes> indexes_;
};

TEST_F(PersistenceTest, DatabaseRoundTrip) {
  ASSERT_TRUE(SaveDatabase(*db_, dir_).ok());
  auto loaded = LoadDatabase(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ((*loaded)->documents().size(), db_->documents().size());
  for (const auto& [name, doc] : db_->documents()) {
    const xml::Document* reloaded = (*loaded)->GetDocument(name);
    ASSERT_NE(reloaded, nullptr) << name;
    EXPECT_EQ(reloaded->root_component(), doc->root_component());
    EXPECT_EQ(xml::Serialize(*reloaded), xml::Serialize(*doc));
  }
}

TEST_F(PersistenceTest, IndexRoundTripAnswersIdentically) {
  ASSERT_TRUE(SaveDatabase(*db_, dir_).ok());
  ASSERT_TRUE(SaveIndexes(*db_, *indexes_, dir_).ok());
  auto loaded_db = LoadDatabase(dir_);
  ASSERT_TRUE(loaded_db.ok());
  auto loaded_idx = LoadIndexes(**loaded_db, dir_);
  ASSERT_TRUE(loaded_idx.ok()) << loaded_idx.status();

  // Full searches over original vs reloaded state agree exactly.
  DocumentStore store_a(*db_);
  DocumentStore store_b(**loaded_db);
  engine::ViewSearchEngine original(db_.get(), indexes_.get(), &store_a);
  engine::ViewSearchEngine reloaded(loaded_db->get(), loaded_idx->get(),
                                    &store_b);
  for (const auto& keywords :
       std::vector<std::vector<std::string>>{{"xml", "search"},
                                             {"database"}}) {
    engine::SearchRequest request;
    request.view = workload::BookRevView();
    request.keywords = keywords;
    auto a = original.Execute(request);
    auto b = reloaded.Execute(request);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->hits.size(), b->hits.size());
    for (size_t i = 0; i < a->hits.size(); ++i) {
      EXPECT_EQ(a->hits[i].xml, b->hits[i].xml);
      EXPECT_DOUBLE_EQ(a->hits[i].score, b->hits[i].score);
    }
  }
}

TEST_F(PersistenceTest, LoadFromMissingDirectory) {
  auto loaded = LoadDatabase(dir_ + "_nope");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// Regression coverage for manifest hardening: corrupted manifests must
// fail with InvalidArgument (not crash in numeric parsing, not silently
// skip entries), and a manifest naming an absent document file must fail
// with NotFound.
TEST_F(PersistenceTest, CorruptedManifestIsInvalidArgument) {
  ASSERT_TRUE(SaveDatabase(*db_, dir_).ok());
  auto rewrite_manifest = [this](const std::string& content) {
    std::ofstream manifest(dir_ + "/manifest.qv", std::ios::trunc);
    manifest << content;
  };

  // A line without a separating space.
  rewrite_manifest("justoneword\n");
  auto loaded = LoadDatabase(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);

  // A non-numeric root component used to throw out of std::stoul and
  // kill the process; now it is a clean error.
  rewrite_manifest("notanumber books.xml\n");
  loaded = LoadDatabase(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);

  // Numeric prefix with trailing junk is still malformed, not "1".
  rewrite_manifest("1x books.xml\n");
  loaded = LoadDatabase(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);

  // An overflowing root component must not wrap around.
  rewrite_manifest("99999999999 books.xml\n");
  loaded = LoadDatabase(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);

  // An empty document name.
  rewrite_manifest("1 \n");
  loaded = LoadDatabase(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);

  // The same document listed twice.
  uint32_t root = db_->documents().begin()->second->root_component();
  const std::string& name = db_->documents().begin()->first;
  std::string line = std::to_string(root) + " " + name + "\n";
  rewrite_manifest(line + line);
  loaded = LoadDatabase(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PersistenceTest, ManifestNamingMissingDocumentFileIsNotFound) {
  ASSERT_TRUE(SaveDatabase(*db_, dir_).ok());
  {
    std::ofstream manifest(dir_ + "/manifest.qv", std::ios::app);
    manifest << "777 ghost.xml\n";
  }
  auto loaded = LoadDatabase(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_NE(loaded.status().message().find("ghost.xml"), std::string::npos);
}

TEST_F(PersistenceTest, LoadIndexesMissingFilesIsNotFound) {
  ASSERT_TRUE(SaveDatabase(*db_, dir_).ok());
  auto loaded_db = LoadDatabase(dir_);
  ASSERT_TRUE(loaded_db.ok());
  auto loaded_idx = LoadIndexes(**loaded_db, dir_);
  ASSERT_FALSE(loaded_idx.ok());
  EXPECT_EQ(loaded_idx.status().code(), StatusCode::kNotFound);
}

TEST_F(PersistenceTest, TruncatedIndexFileIsParseError) {
  ASSERT_TRUE(SaveDatabase(*db_, dir_).ok());
  ASSERT_TRUE(SaveIndexes(*db_, *indexes_, dir_).ok());
  // Truncate one index file mid-record.
  std::string victim = dir_ + "/idx_1.paths";
  auto size = std::filesystem::file_size(victim);
  std::filesystem::resize_file(victim, size / 2 + 3);
  auto loaded_db = LoadDatabase(dir_);
  ASSERT_TRUE(loaded_db.ok());
  auto loaded_idx = LoadIndexes(**loaded_db, dir_);
  EXPECT_FALSE(loaded_idx.ok());
}

TEST_F(PersistenceTest, ValuesWithSpecialBytesSurvive) {
  xml::Database db;
  auto doc = std::make_shared<xml::Document>(1);
  xml::NodeIndex root = doc->CreateRoot("r");
  doc->node(doc->AddChild(root, "v")).text = "line1\nline2 & <tag> 'q'";
  db.AddDocument("special.xml", doc);
  auto indexes = index::BuildDatabaseIndexes(db);
  ASSERT_TRUE(SaveDatabase(db, dir_).ok());
  ASSERT_TRUE(SaveIndexes(db, *indexes, dir_).ok());
  auto loaded_db = LoadDatabase(dir_);
  ASSERT_TRUE(loaded_db.ok()) << loaded_db.status();
  auto loaded_idx = LoadIndexes(**loaded_db, dir_);
  ASSERT_TRUE(loaded_idx.ok()) << loaded_idx.status();
  const xml::Document* reloaded = (*loaded_db)->GetDocument("special.xml");
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->node(1).text, "line1\nline2 & <tag> 'q'");
  // Index row with the multi-line value survived.
  index::PathPattern pattern{index::PathStep{false, "r"},
                             index::PathStep{false, "v"}};
  auto entries = loaded_idx->get()
                     ->Get("special.xml")
                     ->path_index.LookUpIdValue(pattern);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(*entries[0].value, "line1\nline2 & <tag> 'q'");
}

}  // namespace
}  // namespace quickview::storage
