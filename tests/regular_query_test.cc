// Paper §7 (future work): "our proposed PDT algorithms may be applied to
// optimize regular queries because the algorithms efficiently generate
// the relevant pruned data". Realized here: evaluating a view with an
// EMPTY keyword set over its PDTs must produce exactly the base-data
// results — Theorem 4.1(a) with KW = {} — across the whole parameterized
// view family.
#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "pdt/generate_pdt.h"
#include "qpt/generate_qpt.h"
#include "scoring/materializer.h"
#include "storage/document_store.h"
#include "workload/inex_generator.h"
#include "workload/view_factory.h"
#include "xml/serializer.h"
#include "xquery/evaluator.h"
#include "xquery/parser.h"

namespace quickview {
namespace {

struct ViewCase {
  int joins;
  int nesting;
};

class RegularQueryOverPdt : public ::testing::TestWithParam<ViewCase> {};

TEST_P(RegularQueryOverPdt, PdtEvaluationEqualsBaseEvaluation) {
  workload::InexOptions opts;
  opts.target_bytes = 48 * 1024;
  auto db = workload::GenerateInexDatabase(opts);
  auto indexes = index::BuildDatabaseIndexes(*db);
  storage::DocumentStore store(*db);

  workload::ViewSpec spec;
  spec.num_joins = GetParam().joins;
  spec.nesting_level = GetParam().nesting;
  std::string view = workload::BuildInexView(spec);

  // Base evaluation.
  auto base_query = xquery::ParseQuery(view);
  ASSERT_TRUE(base_query.ok()) << base_query.status();
  xquery::Evaluator base_eval(db.get());
  auto base = base_eval.Evaluate(*base_query);
  ASSERT_TRUE(base.ok()) << base.status();

  // PDT evaluation with no keywords at all.
  auto pdt_query = xquery::ParseQuery(view);
  ASSERT_TRUE(pdt_query.ok());
  auto qpts = qpt::GenerateQpts(&*pdt_query);
  ASSERT_TRUE(qpts.ok()) << qpts.status();
  xquery::Evaluator pdt_eval(db.get());
  std::vector<std::shared_ptr<xml::Document>> pdts;
  for (const qpt::Qpt& q : *qpts) {
    auto pdt = pdt::GeneratePdt(q, *indexes->Get(q.source_doc), {}, nullptr);
    ASSERT_TRUE(pdt.ok()) << pdt.status();
    pdts.push_back(*pdt);
    pdt_eval.OverrideDocument(q.occurrence_name, pdts.back().get());
  }
  auto pruned = pdt_eval.Evaluate(*pdt_query);
  ASSERT_TRUE(pruned.ok()) << pruned.status();

  // I(Q(PDT)) = Q(D): same result count, and each pruned result expands
  // (via document storage) to exactly the base result's XML.
  ASSERT_EQ(pruned->size(), base->size());
  for (size_t i = 0; i < base->size(); ++i) {
    const auto* base_handle = std::get_if<xquery::NodeHandle>(&(*base)[i]);
    const auto* pruned_handle =
        std::get_if<xquery::NodeHandle>(&(*pruned)[i]);
    ASSERT_NE(base_handle, nullptr);
    ASSERT_NE(pruned_handle, nullptr);
    auto materialized = scoring::MaterializeToXml(*pruned_handle, &store);
    ASSERT_TRUE(materialized.ok()) << materialized.status();
    EXPECT_EQ(*materialized,
              xml::Serialize(*base_handle->doc,
                             base_handle->effective_index()))
        << "result " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ViewFamily, RegularQueryOverPdt,
    ::testing::Values(ViewCase{0, 1}, ViewCase{1, 2}, ViewCase{2, 2},
                      ViewCase{3, 2}, ViewCase{4, 2}, ViewCase{1, 3},
                      ViewCase{1, 4}),
    [](const ::testing::TestParamInfo<ViewCase>& info) {
      return "joins" + std::to_string(info.param.joins) + "_nesting" +
             std::to_string(info.param.nesting);
    });

}  // namespace
}  // namespace quickview
