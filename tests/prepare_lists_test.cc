#include "pdt/prepare_lists.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "qpt/generate_qpt.h"
#include "workload/bookrev_generator.h"
#include "xml/parser.h"
#include "xquery/parser.h"

namespace quickview::pdt {
namespace {

qpt::Qpt QptFor(const std::string& view, size_t index = 0) {
  auto query = xquery::ParseQuery(view);
  EXPECT_TRUE(query.ok()) << query.status();
  auto qpts = qpt::GenerateQpts(&*query);
  EXPECT_TRUE(qpts.ok()) << qpts.status();
  return std::move((*qpts)[index]);
}

TEST(InvListTest, SubtreeTfRangeSums) {
  InvList inv;
  inv.term = "xml";
  for (const char* id : {"1.1", "1.1.2", "1.2", "1.10.1"}) {
    inv.postings.push_back(index::Posting{xml::DeweyId::Parse(id), 2});
  }
  inv.BuildPrefix();
  EXPECT_EQ(inv.SubtreeTf(xml::DeweyId::Parse("1")), 8u);
  EXPECT_EQ(inv.SubtreeTf(xml::DeweyId::Parse("1.1")), 4u);  // incl. self
  EXPECT_EQ(inv.SubtreeTf(xml::DeweyId::Parse("1.1.2")), 2u);
  EXPECT_EQ(inv.SubtreeTf(xml::DeweyId::Parse("1.3")), 0u);
  EXPECT_EQ(inv.SubtreeTf(xml::DeweyId::Parse("1.10")), 2u);
}

TEST(MapDepthsTest, SimpleChain) {
  qpt::Qpt qpt;
  qpt.nodes.push_back(qpt::QptNode{});
  int books = qpt.AddNode(0, "books", false, true);
  int book = qpt.AddNode(books, "book", true, true);
  int isbn = qpt.AddNode(book, "isbn", false, true);
  auto map = MapDepthsToQptNodes(qpt, isbn, "/books/book/isbn");
  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(map[0], (std::vector<int>{books}));
  EXPECT_EQ(map[1], (std::vector<int>{book}));
  EXPECT_EQ(map[2], (std::vector<int>{isbn}));
}

TEST(MapDepthsTest, DescendantGapLeavesUnmappedDepths) {
  qpt::Qpt qpt;
  qpt.nodes.push_back(qpt::QptNode{});
  int books = qpt.AddNode(0, "books", false, true);
  int isbn = qpt.AddNode(books, "isbn", true, true);
  auto map = MapDepthsToQptNodes(qpt, isbn, "/books/book/isbn");
  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(map[0], (std::vector<int>{books}));
  EXPECT_TRUE(map[1].empty());  // "book" matches no QPT node
  EXPECT_EQ(map[2], (std::vector<int>{isbn}));
}

TEST(MapDepthsTest, RepeatingTagsMatchMultipleQptNodes) {
  // QPT //a//a against data path /a/a/a: the middle element matches the
  // first QPT node; the leaf element matches the second (Appendix E).
  qpt::Qpt qpt;
  qpt.nodes.push_back(qpt::QptNode{});
  int a1 = qpt.AddNode(0, "a", true, true);
  int a2 = qpt.AddNode(a1, "a", true, true);
  auto map = MapDepthsToQptNodes(qpt, a2, "/a/a/a");
  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(map[0], (std::vector<int>{a1}));
  EXPECT_EQ(map[1], (std::vector<int>{a1}));  // both embeddings use depth<3
  EXPECT_EQ(map[2], (std::vector<int>{a2}));
}

class PrepareListsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = workload::GenerateBookRevDatabase(workload::BookRevOptions{});
    indexes_ = index::BuildDatabaseIndexes(*db_);
  }

  std::shared_ptr<xml::Database> db_;
  std::unique_ptr<index::DatabaseIndexes> indexes_;
};

TEST_F(PrepareListsTest, ProbesAreBoundedByQuerySize) {
  qpt::Qpt qpt = QptFor(workload::BookRevView(), 0);
  auto lists = PrepareLists(qpt, *indexes_->Get("books.xml"),
                            {"xml", "search"});
  ASSERT_TRUE(lists.ok()) << lists.status();
  // Probed nodes: year (pred leaf), title (c leaf), isbn (v leaf), book
  // (no mandatory-child probe exemption does not apply: book has the
  // mandatory year child and no v/c annotation -> not probed), books
  // (has mandatory child -> not probed).
  EXPECT_EQ(lists->path_lists.size(), 3u);
  EXPECT_EQ(lists->index_probes, 3u);
  EXPECT_EQ(lists->inv_lists.size(), 2u);
}

TEST_F(PrepareListsTest, PredicateFilteringHappensAtProbeTime) {
  qpt::Qpt qpt = QptFor(workload::BookRevView(), 0);
  auto lists = PrepareLists(qpt, *indexes_->Get("books.xml"), {});
  ASSERT_TRUE(lists.ok());
  const xml::Document& books = *db_->GetDocument("books.xml");
  for (const PathList& list : lists->path_lists) {
    if (qpt.nodes[list.qpt_node].tag != "year") continue;
    for (const ListEntry& entry : list.entries) {
      xml::NodeIndex node = books.FindByDewey(entry.id);
      ASSERT_NE(node, xml::kInvalidNode);
      EXPECT_GT(std::stoi(books.node(node).text), 1995);
    }
    EXPECT_FALSE(list.entries.empty());
  }
}

TEST_F(PrepareListsTest, ValuesRideAlongForVNodes) {
  qpt::Qpt qpt = QptFor(workload::BookRevView(), 1);  // review QPT
  auto lists = PrepareLists(qpt, *indexes_->Get("reviews.xml"), {});
  ASSERT_TRUE(lists.ok());
  bool saw_isbn = false;
  for (const PathList& list : lists->path_lists) {
    if (qpt.nodes[list.qpt_node].tag != "isbn") continue;
    saw_isbn = true;
    ASSERT_FALSE(list.entries.empty());
    for (const ListEntry& entry : list.entries) {
      EXPECT_TRUE(entry.value.has_value());
    }
  }
  EXPECT_TRUE(saw_isbn);
}

TEST_F(PrepareListsTest, EntriesAreDeweyOrdered) {
  qpt::Qpt qpt = QptFor(workload::BookRevView(), 0);
  auto lists = PrepareLists(qpt, *indexes_->Get("books.xml"), {"xml"});
  ASSERT_TRUE(lists.ok());
  for (const PathList& list : lists->path_lists) {
    for (size_t i = 1; i < list.entries.size(); ++i) {
      EXPECT_LT(list.entries[i - 1].id, list.entries[i].id);
    }
  }
  for (const InvList& inv : lists->inv_lists) {
    for (size_t i = 1; i < inv.postings.size(); ++i) {
      EXPECT_LT(inv.postings[i - 1].id, inv.postings[i].id);
    }
  }
}

}  // namespace
}  // namespace quickview::pdt
