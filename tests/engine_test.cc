#include "engine/view_search_engine.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "storage/document_store.h"
#include "workload/bookrev_generator.h"

namespace quickview::engine {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = workload::GenerateBookRevDatabase(workload::BookRevOptions{});
    indexes_ = index::BuildDatabaseIndexes(*db_);
    store_ = std::make_unique<storage::DocumentStore>(*db_);
    engine_ = std::make_unique<ViewSearchEngine>(db_.get(), indexes_.get(),
                                                 store_.get());
  }

  // The unified entry point, in its two request forms.
  Result<SearchResponse> ExecQuery(const std::string& query,
                                   SearchOptions options = {}) {
    SearchRequest request;
    request.query = query;
    request.options = options;
    return engine_->Execute(request);
  }
  Result<SearchResponse> ExecView(const std::string& view,
                                  std::vector<std::string> keywords,
                                  SearchOptions options = {}) {
    SearchRequest request;
    request.view = view;
    request.keywords = std::move(keywords);
    request.options = options;
    return engine_->Execute(request);
  }

  std::shared_ptr<xml::Database> db_;
  std::unique_ptr<index::DatabaseIndexes> indexes_;
  std::unique_ptr<storage::DocumentStore> store_;
  std::unique_ptr<ViewSearchEngine> engine_;
};

TEST_F(EngineTest, Fig2QueryEndToEnd) {
  auto response = ExecQuery(workload::BookRevKeywordQuery());
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_FALSE(response->hits.empty());
  for (const SearchHit& hit : response->hits) {
    // Conjunctive semantics: every hit contains both keywords.
    ASSERT_EQ(hit.tf.size(), 2u);
    EXPECT_GT(hit.tf[0], 0u);
    EXPECT_GT(hit.tf[1], 0u);
    EXPECT_NE(hit.xml.find("<bookrevs>"), std::string::npos);
  }
  // Hits are sorted by descending score.
  for (size_t i = 1; i < response->hits.size(); ++i) {
    EXPECT_GE(response->hits[i - 1].score, response->hits[i].score);
  }
}

TEST_F(EngineTest, TopKLimitsHitsNotScoring) {
  SearchOptions options;
  options.top_k = 2;
  auto response = ExecView(workload::BookRevView(), {"xml"}, options);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_LE(response->hits.size(), 2u);
  EXPECT_GE(response->stats.matching_results, response->hits.size());
}

TEST_F(EngineTest, BaseDataTouchedOnlyForTopK) {
  SearchOptions options;
  options.top_k = 1;
  auto response = ExecView(workload::BookRevView(), {"xml"}, options);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->hits.size(), 1u);
  // Store fetches happen only during materialization of that single hit:
  // bounded by the result's pruned nodes, far below the match count.
  EXPECT_GT(response->stats.store_fetches, 0u);
  EXPECT_LE(response->stats.store_fetches, 16u);
}

TEST_F(EngineTest, StatsAndTimingsPopulated) {
  auto response = ExecView(workload::BookRevView(), {"xml", "search"});
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_GT(response->stats.pdt.ids_processed, 0u);
  EXPECT_GT(response->stats.pdt.nodes_emitted, 0u);
  EXPECT_GT(response->stats.pdt.index_probes, 0u);
  EXPECT_GT(response->stats.pdt.pdt_bytes, 0u);
  EXPECT_GT(response->stats.view_results, 0u);
  EXPECT_GE(response->timings.total_ms(), 0.0);
}

TEST_F(EngineTest, NoMatchesYieldsEmptyHits) {
  auto response = ExecView(workload::BookRevView(), {"zzzznotpresent"});
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->hits.empty());
  EXPECT_EQ(response->stats.matching_results, 0u);
}

TEST_F(EngineTest, UnknownDocumentIsAnError) {
  auto response = ExecView("fn:doc(missing.xml)//a", {"x"});
  EXPECT_FALSE(response.ok());
}

TEST_F(EngineTest, MalformedQueryIsParseError) {
  auto response = ExecQuery("not a query");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kParseError);
}

TEST_F(EngineTest, DisjunctiveSemantics) {
  SearchOptions options;
  options.conjunctive = false;
  auto disj = ExecView(workload::BookRevView(), {"xml", "database"}, options);
  options.conjunctive = true;
  auto conj = ExecView(workload::BookRevView(), {"xml", "database"}, options);
  ASSERT_TRUE(disj.ok() && conj.ok());
  EXPECT_GE(disj->stats.matching_results, conj->stats.matching_results);
}

}  // namespace
}  // namespace quickview::engine
