#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "workload/bookrev_generator.h"
#include "workload/inex_generator.h"
#include "workload/view_factory.h"
#include "xml/serializer.h"
#include "xquery/parser.h"

namespace quickview::workload {
namespace {

TEST(InexGeneratorTest, ProducesAllDocuments) {
  InexOptions opts;
  opts.target_bytes = 32 * 1024;
  auto db = GenerateInexDatabase(opts);
  for (const char* name :
       {"inex.xml", "authors.xml", "groups.xml", "supergroups.xml",
        "affil.xml", "venues.xml", "awards.xml"}) {
    ASSERT_NE(db->GetDocument(name), nullptr) << name;
    EXPECT_TRUE(db->GetDocument(name)->has_root()) << name;
  }
}

TEST(InexGeneratorTest, SizeKnobScalesOutput) {
  InexOptions small;
  small.target_bytes = 16 * 1024;
  InexOptions large = small;
  large.target_bytes = 64 * 1024;
  auto small_db = GenerateInexDatabase(small);
  auto large_db = GenerateInexDatabase(large);
  const xml::Document* small_doc = small_db->GetDocument("inex.xml");
  const xml::Document* large_doc = large_db->GetDocument("inex.xml");
  uint64_t small_bytes = xml::SubtreeByteLength(*small_doc, 0);
  uint64_t large_bytes = xml::SubtreeByteLength(*large_doc, 0);
  EXPECT_GT(large_bytes, 3 * small_bytes);
  // Rough accuracy of the target: within 2x either way.
  EXPECT_GT(small_bytes, small.target_bytes / 2);
  EXPECT_LT(small_bytes, small.target_bytes * 2);
}

TEST(InexGeneratorTest, DeterministicForSeed) {
  InexOptions opts;
  opts.target_bytes = 16 * 1024;
  auto a = GenerateInexDatabase(opts);
  auto b = GenerateInexDatabase(opts);
  EXPECT_EQ(xml::Serialize(*a->GetDocument("inex.xml")),
            xml::Serialize(*b->GetDocument("inex.xml")));
  opts.seed = 43;
  auto c = GenerateInexDatabase(opts);
  EXPECT_NE(xml::Serialize(*a->GetDocument("inex.xml")),
            xml::Serialize(*c->GetDocument("inex.xml")));
}

TEST(InexGeneratorTest, SelectivityTiersOrderInvertedListLengths) {
  InexOptions opts;
  opts.target_bytes = 128 * 1024;
  auto db = GenerateInexDatabase(opts);
  auto indexes = index::BuildDatabaseIndexes(*db);
  const auto& inv = indexes->Get("inex.xml")->inverted_index;
  // Low selectivity = frequent terms = long lists; high = short.
  size_t low = inv.ListLength("ieee");
  size_t medium = inv.ListLength("thomas");
  size_t high = inv.ListLength("moore");
  EXPECT_GT(low, medium);
  EXPECT_GT(medium, high);
  EXPECT_GT(high, 0u);
}

TEST(InexGeneratorTest, JoinSelectivityReplicatesAuthors) {
  // Lower selectivity = smaller author pool in articles = more articles
  // joined per matching author (the paper's replication model), while the
  // total number of authored articles stays the same.
  InexOptions opts;
  opts.target_bytes = 512 * 1024;
  opts.join_selectivity = 1.0;
  auto full = GenerateInexDatabase(opts);
  opts.join_selectivity = 0.1;
  auto replicated = GenerateInexDatabase(opts);
  auto distinct_authors = [](const xml::Database& db) {
    const xml::Document* doc = db.GetDocument("inex.xml");
    std::set<std::string> names;
    size_t total = 0;
    for (xml::NodeIndex i = 0; i < doc->size(); ++i) {
      if (doc->node(i).tag == "au") {
        names.insert(doc->node(i).text);
        ++total;
      }
    }
    return std::make_pair(names.size(), total);
  };
  auto [full_distinct, full_total] = distinct_authors(*full);
  auto [repl_distinct, repl_total] = distinct_authors(*replicated);
  // 0.1X confines authors to a tenth of the pool (<= 26 of 256 names);
  // 1X spreads them far wider, so matches-per-author differ ~10x.
  EXPECT_LE(repl_distinct, 26u);
  EXPECT_GT(full_distinct, 2 * repl_distinct);
  EXPECT_EQ(full_total, repl_total);
}

TEST(InexGeneratorTest, ElementSizeFactorGrowsArticles) {
  InexOptions opts;
  opts.target_bytes = 32 * 1024;
  auto small = GenerateInexDatabase(opts);
  opts.element_size_factor = 4;
  auto large = GenerateInexDatabase(opts);
  auto article_count = [](const xml::Database& db) {
    const xml::Document* doc = db.GetDocument("inex.xml");
    size_t count = 0;
    for (xml::NodeIndex i = 0; i < doc->size(); ++i) {
      if (doc->node(i).tag == "article") ++count;
    }
    return count;
  };
  // Same total bytes but bigger articles => fewer articles.
  EXPECT_LT(article_count(*large), article_count(*small));
}

TEST(ViewFactoryTest, AllSpecsParse) {
  for (int joins = 0; joins <= 4; ++joins) {
    for (int nesting = 1; nesting <= 4; ++nesting) {
      ViewSpec spec;
      spec.num_joins = joins;
      spec.nesting_level = nesting;
      std::string view = BuildInexView(spec);
      auto query = xquery::ParseQuery(view);
      EXPECT_TRUE(query.ok())
          << "joins=" << joins << " nesting=" << nesting << ": "
          << query.status() << "\n" << view;
    }
  }
}

TEST(BookRevGeneratorTest, MatchesPaperExample) {
  auto db = GenerateBookRevDatabase(BookRevOptions{});
  ASSERT_NE(db->GetDocument("books.xml"), nullptr);
  ASSERT_NE(db->GetDocument("reviews.xml"), nullptr);
  auto query = xquery::ParseKeywordQuery(BookRevKeywordQuery());
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->keywords, (std::vector<std::string>{"xml", "search"}));
}

}  // namespace
}  // namespace quickview::workload
