# Negative-compile harness: proves a compile-time gate actually bites.
#
# Invoked as a ctest (see tests/CMakeLists.txt):
#   cmake -DCOMPILER=<c++> -DSOURCE=<file.cc> -DINCLUDE_DIR=<src>
#         "-DFLAGS=-std=c++20 -Wall ... -Werror"
#         -P negative_compile_check.cmake
#
# The source file carries BOTH sides of the experiment, switched by the
# QV_NEGATIVE preprocessor define:
#   1. control: compiled WITHOUT -DQV_NEGATIVE, it must COMPILE — this
#      pins the failure below on the violation, not on a stale include
#      path or an unrelated warning;
#   2. violation: compiled WITH -DQV_NEGATIVE, it must FAIL to compile —
#      the gate (thread-safety analysis, [[nodiscard]] + -Werror) bites.
#
# -fsyntax-only keeps it a pure front-end check (no objects, no links).

foreach(var COMPILER SOURCE INCLUDE_DIR FLAGS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "negative_compile_check.cmake: ${var} not set")
  endif()
endforeach()

separate_arguments(flag_list UNIX_COMMAND "${FLAGS}")

execute_process(
  COMMAND ${COMPILER} ${flag_list} -I${INCLUDE_DIR} -fsyntax-only ${SOURCE}
  RESULT_VARIABLE control_rc
  OUTPUT_VARIABLE control_out
  ERROR_VARIABLE control_err)
if(NOT control_rc EQUAL 0)
  message(FATAL_ERROR
    "control build of ${SOURCE} FAILED — the harness is broken (fix the "
    "test file or flags before trusting the violation leg):\n"
    "${control_out}\n${control_err}")
endif()

execute_process(
  COMMAND ${COMPILER} ${flag_list} -DQV_NEGATIVE -I${INCLUDE_DIR}
          -fsyntax-only ${SOURCE}
  RESULT_VARIABLE violation_rc
  OUTPUT_VARIABLE violation_out
  ERROR_VARIABLE violation_err)
if(violation_rc EQUAL 0)
  message(FATAL_ERROR
    "violation build of ${SOURCE} COMPILED — the gate does not bite; the "
    "static-analysis net has a hole")
endif()

message(STATUS
  "gate bites: ${SOURCE} control compiles, violation is rejected")
