// Negative-compile case: ignoring a [[nodiscard]] Status or Result<T>
// return must fail under -Werror (GCC and clang both enforce this one).
// The control build (no QV_NEGATIVE) checks both returns and must
// compile. Driven by tests/negative/negative_compile_check.cmake.
#include "common/result.h"
#include "common/status.h"

namespace {

quickview::Status Touch() { return quickview::Status::OK(); }

quickview::Result<int> Parse() { return 42; }

}  // namespace

int main() {
#ifdef QV_NEGATIVE
  Touch();  // VIOLATION: discarded [[nodiscard]] Status.
  Parse();  // VIOLATION: discarded [[nodiscard]] Result<int>.
  return 0;
#else
  if (!Touch().ok()) return 1;
  quickview::Result<int> parsed = Parse();
  if (!parsed.ok()) return 1;
  return parsed.value() == 42 ? 0 : 1;
#endif
}
