// Negative-compile case: touching a QV_GUARDED_BY member without its
// lock must fail under clang -Wthread-safety -Werror. The control build
// (no QV_NEGATIVE) takes the lock and must compile — proving any failure
// of the violation build comes from the thread-safety gate itself.
// Driven by tests/negative/negative_compile_check.cmake (clang only; the
// annotations are no-ops under GCC, where this gate cannot bite).
#include "common/sync.h"

namespace {

class Counter {
 public:
  void Bump() {
#ifdef QV_NEGATIVE
    ++n_;  // VIOLATION: n_ is QV_GUARDED_BY(mu_) and mu_ is not held.
#else
    qv::MutexLock lock(mu_);
    ++n_;
#endif
  }

  int Total() const {
    qv::MutexLock lock(mu_);
    return n_;
  }

 private:
  mutable qv::Mutex mu_;
  int n_ QV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Bump();
  return counter.Total() == 1 ? 0 : 1;
}
