// Property tests for PDT generation: on randomized documents and QPTs
// (including repeating tags and '//' chains), the single-merge-pass
// GeneratePdt must produce exactly the element set defined by the paper's
// Definitions 1-3 — CE (descendant constraints, bottom-up) intersected
// with ancestor constraints (PE, top-down) — computed here by brute force
// directly over the document.
#include <map>
#include <random>
#include <set>

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "pdt/generate_pdt.h"
#include "qpt/qpt.h"
#include "xml/dom.h"

namespace quickview::pdt {
namespace {

using xml::DeweyId;
using xml::Document;
using xml::NodeIndex;

// ---- Brute-force Definitions 1-3 ----

bool SatisfiesPreds(const qpt::QptNode& qnode, const xml::Node& node) {
  for (const qpt::QptPredicate& pred : qnode.preds) {
    if (!pred.Matches(node.text)) return false;
  }
  return true;
}

/// CE(n, D) by structural recursion over Definition 1 (bottom-up).
void ComputeCe(const qpt::Qpt& qpt, const Document& doc,
               std::vector<std::set<DeweyId>>* ce) {
  ce->assign(qpt.nodes.size(), {});
  // Children have larger indices; visit bottom-up.
  for (size_t n = qpt.nodes.size(); n-- > 1;) {
    const qpt::QptNode& qnode = qpt.nodes[n];
    for (NodeIndex i = 0; i < doc.size(); ++i) {
      const xml::Node& node = doc.node(i);
      if (node.tag != qnode.tag) continue;
      if (!SatisfiesPreds(qnode, node)) continue;
      bool ok = true;
      for (int child : qpt.nodes[n].children) {
        if (!qpt.nodes[child].parent_mandatory) continue;
        bool found = false;
        for (const DeweyId& cid : (*ce)[child]) {
          bool related = qpt.nodes[child].parent_descendant
                             ? node.id.IsAncestorOf(cid)
                             : node.id.IsParentOf(cid);
          if (related) {
            found = true;
            break;
          }
        }
        if (!found) {
          ok = false;
          break;
        }
      }
      if (ok) (*ce)[n].insert(node.id);
    }
  }
}

/// PE(n, D) per Definition 2 (top-down), with the virtual document root
/// as QPT node 0 (its '/' children must sit at depth 1).
void ComputePe(const qpt::Qpt& qpt, const std::vector<std::set<DeweyId>>& ce,
               std::vector<std::set<DeweyId>>* pe) {
  pe->assign(qpt.nodes.size(), {});
  for (size_t n = 1; n < qpt.nodes.size(); ++n) {
    const qpt::QptNode& qnode = qpt.nodes[n];
    for (const DeweyId& id : ce[n]) {
      bool ok;
      if (qnode.parent == 0) {
        ok = qnode.parent_descendant || id.depth() == 1;
      } else {
        ok = false;
        for (const DeweyId& pid : (*pe)[qnode.parent]) {
          bool related = qnode.parent_descendant ? pid.IsAncestorOf(id)
                                                 : pid.IsParentOf(id);
          if (related) {
            ok = true;
            break;
          }
        }
      }
      if (ok) (*pe)[n].insert(id);
    }
  }
}

std::set<DeweyId> BruteForcePdtIds(const qpt::Qpt& qpt, const Document& doc) {
  std::vector<std::set<DeweyId>> ce;
  ComputeCe(qpt, doc, &ce);
  std::vector<std::set<DeweyId>> pe;
  ComputePe(qpt, ce, &pe);
  std::set<DeweyId> out;
  for (size_t n = 1; n < qpt.nodes.size(); ++n) {
    out.insert(pe[n].begin(), pe[n].end());
  }
  return out;
}

std::set<DeweyId> PdtIds(const Document& pdt) {
  std::set<DeweyId> out;
  for (NodeIndex i = 0; i < pdt.size(); ++i) {
    if (pdt.node(i).tag != "qv:gap") out.insert(pdt.node(i).id);
  }
  return out;
}

// ---- Random instance generation ----

constexpr const char* kTags[] = {"a", "b", "c", "d"};

std::shared_ptr<Document> RandomDocument(std::mt19937_64* rng) {
  auto doc = std::make_shared<Document>(1);
  NodeIndex root = doc->CreateRoot(kTags[(*rng)() % 4]);
  // Random tree: up to ~60 nodes, depth <= 5.
  std::vector<std::pair<NodeIndex, int>> frontier = {{root, 1}};
  int budget = 8 + static_cast<int>((*rng)() % 52);
  while (budget > 0 && !frontier.empty()) {
    size_t pick = (*rng)() % frontier.size();
    auto [parent, depth] = frontier[pick];
    NodeIndex child = doc->AddChild(parent, kTags[(*rng)() % 4]);
    if ((*rng)() % 2 == 0) {
      doc->node(child).text = std::to_string((*rng)() % 10);
    }
    if (depth < 5) frontier.emplace_back(child, depth + 1);
    --budget;
    if ((*rng)() % 4 == 0) frontier.erase(frontier.begin() + pick);
  }
  return doc;
}

qpt::Qpt RandomQpt(std::mt19937_64* rng) {
  qpt::Qpt qpt;
  qpt.source_doc = "doc.xml";
  qpt.occurrence_name = "doc.xml#1";
  qpt.nodes.push_back(qpt::QptNode{});
  // 2-6 nodes, random shape; repeated tags very likely with 4 tags.
  int count = 2 + static_cast<int>((*rng)() % 5);
  for (int i = 0; i < count; ++i) {
    int parent = static_cast<int>((*rng)() % qpt.nodes.size());
    bool descendant = (*rng)() % 2 == 0;
    bool mandatory = (*rng)() % 2 == 0;
    if (parent == 0) mandatory = true;  // root edges are structural
    int node = qpt.AddNode(parent, kTags[(*rng)() % 4], descendant,
                           mandatory);
    switch ((*rng)() % 6) {
      case 0:
        qpt.nodes[node].v_ann = true;
        break;
      case 1:
        qpt.nodes[node].c_ann = true;
        break;
      case 2: {
        qpt::QptPredicate pred;
        pred.op = xquery::CompOp::kGt;
        pred.number = static_cast<double>((*rng)() % 10);
        pred.literal = std::to_string(static_cast<int>(pred.number));
        pred.is_number = true;
        // Predicates attach to leaves only (as GenerateQpts produces).
        if (qpt.nodes[node].children.empty()) {
          qpt.nodes[node].preds.push_back(pred);
          qpt.nodes[node].v_ann = true;
        }
        break;
      }
      default:
        break;
    }
  }
  // A node that gained children cannot keep predicates (leaf-only).
  for (auto& node : qpt.nodes) {
    if (!node.children.empty()) node.preds.clear();
  }
  return qpt;
}

class PdtDefinitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(PdtDefinitionProperty, MergePassMatchesBruteForceDefinitions) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    std::shared_ptr<Document> doc = RandomDocument(&rng);
    qpt::Qpt qpt = RandomQpt(&rng);
    auto indexes = index::BuildDocumentIndexes(*doc);
    auto pdt = GeneratePdt(qpt, *indexes, {}, nullptr);
    ASSERT_TRUE(pdt.ok()) << pdt.status() << "\nQPT:\n" << qpt.ToString();
    std::set<DeweyId> actual = PdtIds(**pdt);
    std::set<DeweyId> expected = BruteForcePdtIds(qpt, *doc);
    if (actual != expected) {
      std::string msg = "QPT:\n" + qpt.ToString() + "\nexpected:";
      for (const DeweyId& id : expected) msg += " " + id.ToString();
      msg += "\nactual:";
      for (const DeweyId& id : actual) msg += " " + id.ToString();
      FAIL() << msg;
    }
    // Every materialized value must match the base document.
    for (NodeIndex i = 0; i < (*pdt)->size(); ++i) {
      const xml::Node& node = (*pdt)->node(i);
      if (node.text.empty()) continue;
      NodeIndex base = doc->FindByDewey(node.id);
      ASSERT_NE(base, xml::kInvalidNode);
      EXPECT_EQ(node.text, doc->node(base).text) << node.id.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdtDefinitionProperty,
                         ::testing::Range(1, 61));

}  // namespace
}  // namespace quickview::pdt
