// The traditional (non-view) keyword-search path: deepest containing
// elements, exact subtree tf from the inverted index, TF-IDF ranking.
#include "engine/base_search.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "xml/parser.h"
#include "xml/tokenizer.h"

namespace quickview::engine {
namespace {

class BaseSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = xml::ParseXml(
        "<lib>"
        "<book><title>xml basics</title>"
        "<chap><p>xml search intro</p><p>more search</p></chap></book>"
        "<book><title>cooking</title><chap><p>recipes</p></chap></book>"
        "</lib>",
        1);
    ASSERT_TRUE(doc.ok());
    db_.AddDocument("lib.xml", *doc);
    indexes_ = index::BuildDatabaseIndexes(db_);
  }

  xml::Database db_;
  std::unique_ptr<index::DatabaseIndexes> indexes_;
};

TEST_F(BaseSearchTest, ReturnsDeepestContainingElements) {
  auto hits = SearchBaseDocuments(db_, *indexes_, {"xml", "search"},
                                  BaseSearchOptions{});
  ASSERT_TRUE(hits.ok()) << hits.status();
  // "xml search" together: deepest containers are the first p (1.1.2.1)
  // and — via title+chap — the book (1.1); the book qualifies but has a
  // qualifying descendant, so only the deepest stays... the first p
  // contains both directly.
  ASSERT_FALSE(hits->empty());
  for (const BaseSearchHit& hit : (*hits)) {
    // No hit may have another hit as descendant (deepest-only).
    for (const BaseSearchHit& other : (*hits)) {
      if (&hit == &other) continue;
      EXPECT_FALSE(hit.id.IsAncestorOf(other.id));
    }
    EXPECT_GT(hit.tf[0], 0u);
    EXPECT_GT(hit.tf[1], 0u);
    EXPECT_FALSE(hit.xml.empty());
  }
  EXPECT_EQ((*hits)[0].id.ToString(), "1.1.2.1");
}

TEST_F(BaseSearchTest, TfMatchesDirectCount) {
  auto hits = SearchBaseDocuments(db_, *indexes_, {"search"},
                                  BaseSearchOptions{});
  ASSERT_TRUE(hits.ok());
  const xml::Document* doc = db_.GetDocument("lib.xml");
  for (const BaseSearchHit& hit : *hits) {
    xml::NodeIndex node = doc->FindByDewey(hit.id);
    EXPECT_EQ(hit.tf[0], xml::SubtreeTermFrequency(*doc, node, "search"));
  }
}

TEST_F(BaseSearchTest, DisjunctiveFindsEitherKeyword) {
  BaseSearchOptions options;
  options.conjunctive = false;
  auto both = SearchBaseDocuments(db_, *indexes_, {"recipes", "cooking"},
                                  options);
  ASSERT_TRUE(both.ok());
  EXPECT_GE(both->size(), 2u);
}

TEST_F(BaseSearchTest, TopKAndOrdering) {
  BaseSearchOptions options;
  options.top_k = 1;
  auto hits = SearchBaseDocuments(db_, *indexes_, {"search"}, options);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
  options.top_k = 100;
  hits = SearchBaseDocuments(db_, *indexes_, {"search"}, options);
  ASSERT_TRUE(hits.ok());
  for (size_t i = 1; i < hits->size(); ++i) {
    EXPECT_GE((*hits)[i - 1].score, (*hits)[i].score);
  }
}

TEST_F(BaseSearchTest, NoKeywordsIsAnError) {
  auto hits = SearchBaseDocuments(db_, *indexes_, {}, BaseSearchOptions{});
  ASSERT_FALSE(hits.ok());
  EXPECT_EQ(hits.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BaseSearchTest, UnknownKeywordYieldsNothing) {
  auto hits = SearchBaseDocuments(db_, *indexes_, {"zzzz"},
                                  BaseSearchOptions{});
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST_F(BaseSearchTest, SearchesEveryDocument) {
  auto extra = xml::ParseXml("<notes><n>search here too</n></notes>", 2);
  ASSERT_TRUE(extra.ok());
  db_.AddDocument("notes.xml", *extra);
  indexes_ = index::BuildDatabaseIndexes(db_);
  auto hits = SearchBaseDocuments(db_, *indexes_, {"search"},
                                  BaseSearchOptions{});
  ASSERT_TRUE(hits.ok());
  bool saw_notes = false;
  for (const BaseSearchHit& hit : *hits) {
    if (hit.document == "notes.xml") saw_notes = true;
  }
  EXPECT_TRUE(saw_notes);
}

}  // namespace
}  // namespace quickview::engine
